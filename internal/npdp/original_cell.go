package npdp

import (
	"fmt"
	"sync"

	"cellnpdp/internal/cachesim"
	"cellnpdp/internal/cellsim"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// This file implements the paper's Cell baselines: the original Figure 1
// algorithm run on one SPE (Section VI-A's baseline, Table II row "one
// SPE") and on the PPE (Table II row "one PPE").
//
// The SPE baseline follows Section VI-A's description: "each DMA command
// prefetches multiple data in one row or a data in one column" — the row
// operand d[i][i..j-1] streams through a chunked buffer while every
// column operand d[k][j] costs its own quadword DMA, so the run is
// dominated by per-command DMA latency. The row-major layout makes
// nothing better than this possible without the paper's restructuring.

// OriginalSPEChunkBytes is the row-stream DMA chunk (a 4 KB transfer).
const OriginalSPEChunkBytes = 4096

// OriginalSPEResult reports an original-algorithm SPE run.
type OriginalSPEResult struct {
	Seconds float64
	DMA     cellsim.DMAStats
	Relax   int64
}

// SolveOriginalSPE runs the original algorithm functionally on one
// simulated SPE, staging all operands through the local store exactly as
// the baseline would: chunked row streams, per-element column fetches,
// per-element write-back. Results are bit-identical to SolveSerial.
// It costs O(n³) DMA bookings, so keep n modest; use ModelOriginalSPE
// for paper-scale sizes.
func SolveOriginalSPE[E semiring.Elem](m *tri.RowMajor[E], mach *cellsim.Machine, scalarRelaxCycles float64) (OriginalSPEResult, error) {
	if scalarRelaxCycles <= 0 {
		return OriginalSPEResult{}, fmt.Errorf("npdp: scalarRelaxCycles must be positive, got %g", scalarRelaxCycles)
	}
	mach.Reset()
	spe := mach.SPEs[0]
	var e E
	eb := elemBytes(e)
	chunkElems := OriginalSPEChunkBytes / eb
	rowBuf, err := cellsim.Alloc[E](spe, chunkElems, eb)
	if err != nil {
		return OriginalSPEResult{}, err
	}
	defer rowBuf.Free()
	elemBuf, err := cellsim.Alloc[E](spe, 1, eb)
	if err != nil {
		return OriginalSPEResult{}, err
	}
	defer elemBuf.Free()

	n := m.Len()
	var res OriginalSPEResult
	for j := 0; j < n; j++ {
		for i := j - 1; i >= 0; i-- {
			v := m.At(i, j)
			for lo := i; lo < j; lo += chunkElems {
				hi := lo + chunkElems
				if hi > j {
					hi = j
				}
				// Stream the row segment d[i][lo..hi-1] into the buffer.
				if err := rowBuf.Get(m.Row(i, lo, hi-1), 0); err != nil {
					return res, err
				}
				spe.WaitTag(0)
				for k := lo; k < hi; k++ {
					// One quadword DMA per column operand d[k][j].
					if err := elemBuf.Get(m.Row(k, j, j), 1); err != nil {
						return res, err
					}
					spe.WaitTag(1)
					if w := rowBuf.Data[k-lo] + elemBuf.Data[0]; w < v {
						v = w
					}
				}
			}
			spe.AdvanceCycles(float64(j-i) * scalarRelaxCycles)
			res.Relax += int64(j - i)
			m.Set(i, j, v)
			elemBuf.Data[0] = v
			if err := elemBuf.Put(m.Row(i, j, j), 2); err != nil {
				return res, err
			}
			spe.WaitTag(2)
		}
	}
	res.Seconds = spe.Clock
	res.DMA = mach.Stats
	return res, nil
}

// ModelOriginalSPE computes the exact DMA/cycle accounting of
// SolveOriginalSPE in O(n²) without data, for paper-scale sizes. A test
// pins it to the functional run.
func ModelOriginalSPE(n int, prec Precision, cfg cellsim.Config, scalarRelaxCycles float64) (OriginalSPEResult, error) {
	if err := tri.CheckSize(n); err != nil {
		return OriginalSPEResult{}, err
	}
	if err := cfg.Validate(); err != nil {
		return OriginalSPEResult{}, err
	}
	if scalarRelaxCycles <= 0 {
		return OriginalSPEResult{}, fmt.Errorf("npdp: scalarRelaxCycles must be positive, got %g", scalarRelaxCycles)
	}
	eb := prec.ElemBytes()
	chunkElems := OriginalSPEChunkBytes / eb
	var res OriginalSPEResult
	seconds := 0.0
	bw := cfg.ChannelBandwidth
	perCmd := cfg.DMALatency + cfg.DMACommandOverhead
	granule := func(bytes int) float64 { return float64((bytes + 15) &^ 15) }
	// Aggregate by span: there are n−s cells with span s, all identical.
	for s := 1; s < n; s++ {
		cells := float64(n - s)
		var cellSec float64
		chunks := (s + chunkElems - 1) / chunkElems
		// Row stream: `chunks` commands carrying s elements total.
		fullChunks := s / chunkElems
		cellSec += float64(fullChunks) * (granule(chunkElems*eb)/bw + perCmd)
		if rem := s % chunkElems; rem > 0 {
			cellSec += granule(rem*eb)/bw + perCmd
		}
		res.DMA.GetCommands += int64(n-s) * int64(chunks)
		// Column fetches: one quadword command per k.
		cellSec += float64(s) * (granule(eb)/bw + perCmd)
		res.DMA.GetCommands += int64(n-s) * int64(s)
		res.DMA.GetBytes += 2 * int64(n-s) * int64(s*eb)
		// Compute and write-back.
		cellSec += float64(s) * scalarRelaxCycles / cfg.ClockHz
		cellSec += granule(eb)/bw + perCmd
		res.DMA.PutCommands += int64(n - s)
		res.DMA.PutBytes += int64(n-s) * int64(eb)
		res.Relax += int64(n-s) * int64(s)
		seconds += cells * cellSec
	}
	res.Seconds = seconds
	return res, nil
}

// PPEModel parameterizes the PPE baseline: a conventional cached scalar
// core running Figure 1 (Table II row "one PPE"). Two memory effects
// dominate it at paper sizes: cache misses (measured trace-driven through
// the PPE hierarchy) and TLB misses — the column walk d[k][j] strides by
// a whole row (≈ n×S bytes, several pages), so once a cell's span j−i
// exceeds the TLB reach every column access pays a hardware table walk.
type PPEModel struct {
	HitCycles   float64 // cycles per relaxation when operands hit cache
	MissPenalty float64 // cycles per cache-line fill from memory
	TLBEntries  int     // data-TLB entries (pages held)
	TLBPenalty  float64 // cycles per table walk
	PageBytes   int
	ClockHz     float64
	// CalibrationSize caps the trace-driven cache-miss measurement; the
	// cache miss rate per relaxation is nearly size-independent once the
	// column working set exceeds the L1, so larger problems reuse the
	// capped measurement. The TLB term is computed analytically at full
	// size.
	CalibrationSize int
}

// DefaultPPEModel returns the QS20 PPE parameters: a 3.2 GHz in-order
// core with 32 KB L1D, 512 KB L2 and a 1024-entry TLB over 4 KB pages.
func DefaultPPEModel() PPEModel {
	return PPEModel{
		HitCycles: 6, MissPenalty: 350,
		TLBEntries: 1024, TLBPenalty: 200, PageBytes: 4096,
		ClockHz: 3.2e9, CalibrationSize: 512,
	}
}

// ppeCalCache memoizes the trace-driven calibration, which costs O(n³)
// cache-simulator accesses per (size, element width).
var ppeCalCache sync.Map // [2]int{cal, elemBytes} -> float64

// ppeMissPerRelax measures (once per size/width) the PPE hierarchy's
// last-level misses per relaxation on the Figure 1 access stream.
func ppeMissPerRelax(cal, elemBytes int) (float64, error) {
	key := [2]int{cal, elemBytes}
	if v, ok := ppeCalCache.Load(key); ok {
		return v.(float64), nil
	}
	h, err := ppeHierarchy()
	if err != nil {
		return 0, err
	}
	cachesim.TraceOriginal(h, cal, elemBytes)
	calRelax := float64(cal) * (float64(cal)*float64(cal) - 1) / 6
	miss := float64(h.LLC().Stats.Misses) / calRelax
	ppeCalCache.Store(key, miss)
	return miss, nil
}

// ppeHierarchy builds the PPE cache hierarchy.
func ppeHierarchy() (*cachesim.Hierarchy, error) {
	l1, err := cachesim.NewCache("PPE-L1D", 32*1024, 64, 8)
	if err != nil {
		return nil, err
	}
	l2, err := cachesim.NewCache("PPE-L2", 512*1024, 64, 8)
	if err != nil {
		return nil, err
	}
	return cachesim.NewHierarchy(l1, l2)
}

// ModelOriginalPPE estimates the original algorithm's time on the PPE:
// the Figure 1 access stream is replayed through the PPE cache hierarchy
// at the calibration size to measure cache misses per relaxation, the
// TLB-walk count is computed analytically at full size, and both are
// charged their penalties.
func ModelOriginalPPE(n int, prec Precision, model PPEModel) (float64, error) {
	if err := tri.CheckSize(n); err != nil {
		return 0, err
	}
	if model.HitCycles <= 0 || model.MissPenalty < 0 || model.ClockHz <= 0 ||
		model.CalibrationSize <= 0 || model.TLBEntries <= 0 || model.TLBPenalty < 0 || model.PageBytes <= 0 {
		return 0, fmt.Errorf("npdp: invalid PPE model %+v", model)
	}
	cal := n
	if cal > model.CalibrationSize {
		cal = model.CalibrationSize
	}
	missPerRelax, err := ppeMissPerRelax(cal, prec.ElemBytes())
	if err != nil {
		return 0, err
	}

	// TLB term: the column operand of a relaxation in cell (i,j) sits
	// (j−i) row strides away from its previous use (the i+1 iteration of
	// the same column), touching ≈ span pages in between; it misses the
	// TLB when span × rowPages exceeds the TLB reach.
	rowPages := float64(n*prec.ElemBytes()) / float64(model.PageBytes)
	if rowPages < 1 {
		rowPages = 1
	}
	reachSpans := float64(model.TLBEntries) / rowPages
	var relax, tlbMisses float64
	for s := 1; s < n; s++ {
		r := float64(n-s) * float64(s)
		relax += r
		if float64(s) > reachSpans {
			tlbMisses += r
		}
	}
	// When the page-table working set itself outgrows half the L2, every
	// table walk also misses cache and pays the memory penalty on top.
	// This threshold falls between n=4096 and n=8192 at single precision,
	// which is exactly where Table II's PPE row jumps superlinearly.
	walkPenalty := model.TLBPenalty
	pageTableBytes := float64(tri.CellCount(n)*prec.ElemBytes()) / float64(model.PageBytes) * 8
	if pageTableBytes > 512*1024/2 {
		walkPenalty += model.MissPenalty
	}
	cycles := relax*(model.HitCycles+missPerRelax*model.MissPenalty) + tlbMisses*walkPenalty
	return cycles / model.ClockHz, nil
}
