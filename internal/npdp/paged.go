package npdp

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cellnpdp/internal/kernel"
	"cellnpdp/internal/pager"
	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/semiring"
)

// PagedOptions configures SolvePagedCtx.
type PagedOptions struct {
	// Workers is the number of concurrent goroutine workers. Required > 0.
	Workers int
	// Stage1 overrides stage-1 kernel selection, as in ParallelOptions;
	// resolved once per solve from the pager's geometry.
	Stage1 perfmodel.Kernel
	// Resume pre-completes every task whose memory blocks are all final in
	// the pager (the committed spill index recovered them), so a restart
	// after SIGKILL recomputes only the remainder.
	Resume bool
	// HealAttempts bounds page-corruption heal rounds (demote the corrupt
	// block's dependence cone to pristine and recompute); 0 means
	// DefaultHealAttempts.
	HealAttempts int
	// Logf, when non-nil, receives heal and recovery progress lines.
	Logf func(format string, args ...any)
}

// SolvePagedCtx runs the tier-2 parallel procedure out of core: the
// table lives in the pager's spill file and only the working set is
// resident. It is the host-side analogue of the paper's SPE discipline —
// Acquire/Release windows are the local-store residency of a block,
// Prefetch of the next stage-1 operand pair is the double-buffered DMA
// that overlaps transfer with compute, and Complete seals a block's
// CRC32C exactly when its producing task finishes (blocks are immutable
// afterwards, so each is spilled at most once).
//
// The scheduling grain is fixed at one task per memory block (g = 1):
// the heal path demotes a corrupt block's dependence cone, and block
// granularity keeps that cone minimal.
//
// Robustness ladder: a spilled final block that pages in corrupt (torn
// write, bit flip, read fault) surfaces as *pager.ErrPageCorrupt; the
// solve demotes the block's transitive successor cone to pristine and
// recomputes it, bounded by HealAttempts rounds. A corrupt pristine
// block has no earlier version and fails the solve. ENOSPC degradation
// and the hard-ceiling *pager.ErrSpillSpace happen inside the pager and
// surface here unhealed (recomputing cannot create disk space).
//
// On success every block is final; the caller materializes the solved
// table with p.Materialize. Resume after SIGKILL is bit-identical to an
// uninterrupted solve because relaxations are idempotent monotone mins
// and a block recovered from the committed index is the same sealed
// bytes its task produced.
func SolvePagedCtx[E semiring.Elem](ctx context.Context, p *pager.Pager[E], opts PagedOptions) (kernel.Stats, error) {
	if err := kernel.CheckTile(p.Tile()); err != nil {
		return kernel.Stats{}, err
	}
	if opts.Workers <= 0 {
		return kernel.Stats{}, fmt.Errorf("npdp: Workers must be positive, got %d", opts.Workers)
	}
	graph, err := sched.NewGraph(p.Blocks(), 1)
	if err != nil {
		return kernel.Stats{}, err
	}
	mul, err := ResolveStage1Shape[E](opts.Stage1, p.Tile(), p.Len())
	if err != nil {
		return kernel.Stats{}, err
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// done mirrors the pool's completion state across heal rounds; the
	// mutex orders concurrent OnTaskDone calls with the heal path's reads
	// (which only run between rounds, but the bitmap copy keeps the
	// discipline uniform).
	done := make([]bool, len(graph.Tasks))
	var doneMu sync.Mutex
	if opts.Resume {
		recovered := 0
		for id, task := range graph.Tasks {
			final := true
			for _, mb := range task.MemoryBlockOrder() {
				if !p.IsFinal(mb[0], mb[1]) {
					final = false
					break
				}
			}
			if final {
				done[id] = true
				recovered++
			}
		}
		if recovered > 0 {
			logf("npdp: paged resume: %d/%d tasks recovered from committed spill index", recovered, len(graph.Tasks))
		}
	}

	perWorker := make([]paddedStats, opts.Workers)
	exec := func(worker int, task sched.Task) error {
		var local kernel.Stats
		for _, mb := range task.MemoryBlockOrder() {
			st, err := computePagedBlock(p, mb[0], mb[1], mul)
			if err != nil {
				return &resilience.TaskError{
					TaskID: task.ID, Bi: task.Bi, Bj: task.Bj,
					Worker: worker, Attempts: 1, Err: err,
				}
			}
			local.Add(st)
		}
		perWorker[worker].Stats.Add(local)
		return nil
	}

	healAttempts := opts.HealAttempts
	if healAttempts <= 0 {
		healAttempts = DefaultHealAttempts
	}
	heals := 0
	for {
		doneMu.Lock()
		completed := append([]bool(nil), done...)
		doneMu.Unlock()
		err = sched.RunPoolCtx(ctx, graph, opts.Workers, sched.PoolRunOptions{
			Completed: completed,
			OnTaskDone: func(task sched.Task) {
				doneMu.Lock()
				done[task.ID] = true
				doneMu.Unlock()
			},
		}, exec)
		if err == nil {
			break
		}
		var pe *pager.ErrPageCorrupt
		if !errors.As(err, &pe) {
			break // cancellation, spill-space exhaustion, I/O setup failure
		}
		if pe.Pristine {
			// No earlier version to fall back to: the input itself is gone.
			err = fmt.Errorf("npdp: paged solve unrecoverable: %w", pe)
			break
		}
		if heals >= healAttempts {
			err = fmt.Errorf("npdp: paged solve gave up after %d heal rounds: %w", heals, pe)
			break
		}
		heals++
		seed, ok := graph.TaskID(pe.Bi, pe.Bj)
		if !ok {
			err = fmt.Errorf("npdp: corrupt block (%d,%d) has no task: %w", pe.Bi, pe.Bj, pe)
			break
		}
		cone := graph.Cone([]int{seed})
		doneMu.Lock()
		for _, id := range cone {
			for _, mb := range graph.Tasks[id].MemoryBlockOrder() {
				p.Demote(mb[0], mb[1])
			}
			done[id] = false
		}
		doneMu.Unlock()
		logf("npdp: paged heal round %d: block (%d,%d) corrupt on page-in, demoted %d-task cone to pristine", heals, pe.Bi, pe.Bj, len(cone))
	}

	var st kernel.Stats
	for i := range perWorker {
		st.Add(perWorker[i].Stats)
	}
	return st, err
}

// computePagedBlock is computeMemoryBlock against the pager: every
// operand is pinned for exactly its use window, and the next stage-1
// pair is prefetched while the current product runs — the cellsim
// double-buffer, with the page cache standing in for the second LS
// buffer. The destination block stays pinned for the whole task and is
// sealed final (CRC32C) before the pin drops, so eviction can never see
// a half-computed block.
func computePagedBlock[E semiring.Elem](p *pager.Pager[E], bi, bj int, mul Stage1Func[E]) (kernel.Stats, error) {
	ts := p.Tile()
	var st kernel.Stats
	d, err := p.Acquire(bi, bj)
	if err != nil {
		return st, err
	}
	defer p.Release(bi, bj)
	if bi == bj {
		st.Add(kernel.Stage2Diag(d, ts))
	} else {
		for k := bi + 1; k < bj; k++ {
			if k+1 < bj {
				p.Prefetch(bi, k+1)
				p.Prefetch(k+1, bj)
			} else {
				p.Prefetch(bi, bi)
				p.Prefetch(bj, bj)
			}
			a, err := p.Acquire(bi, k)
			if err != nil {
				return st, err
			}
			b, err := p.Acquire(k, bj)
			if err != nil {
				p.Release(bi, k)
				return st, err
			}
			st.Add(mul(d, a, b, ts))
			p.Release(bi, k)
			p.Release(k, bj)
		}
		aa, err := p.Acquire(bi, bi)
		if err != nil {
			return st, err
		}
		bb, err := p.Acquire(bj, bj)
		if err != nil {
			p.Release(bi, bi)
			return st, err
		}
		st.Add(kernel.Stage2OffDiag(d, aa, bb, ts))
		p.Release(bi, bi)
		p.Release(bj, bj)
	}
	if err := p.Complete(bi, bj); err != nil {
		return st, err
	}
	return st, nil
}
