package npdp

import (
	"context"
	"path/filepath"
	"testing"

	"cellnpdp/internal/pager"
	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

func pagedSolveToRowMajor[E semiring.Elem](t *testing.T, p *pager.Pager[E], opts PagedOptions) *tri.RowMajor[E] {
	t.Helper()
	if _, err := SolvePagedCtx(context.Background(), p, opts); err != nil {
		t.Fatalf("SolvePagedCtx: %v", err)
	}
	out := tri.NewTiled[E](p.Len(), p.Tile())
	if err := p.Materialize(out); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	return tri.ToRowMajor(out)
}

func checkPagedParity[E semiring.Elem](t *testing.T, src *tri.RowMajor[E], tile, frames, workers int) {
	t.Helper()
	ref := solveRef(src)
	tt := tri.ToTiled(src, tile)
	path := filepath.Join(t.TempDir(), "solve.npsp")
	p, err := pager.Create(path, tt, pager.Options{Frames: frames})
	if err != nil {
		t.Fatalf("pager.Create: %v", err)
	}
	defer p.Close()
	got := pagedSolveToRowMajor(t, p, PagedOptions{Workers: workers})
	if i, j, av, bv, diff := tri.FirstDiff[E](ref, got); diff {
		t.Fatalf("n=%d tile=%d frames=%d workers=%d: first diff at (%d,%d): serial=%v paged=%v",
			src.Len(), tile, frames, workers, i, j, av, bv)
	}
	if st := p.Stats(); frames < tt.Blocks() && st.SpilledBlocks == 0 {
		t.Errorf("frames=%d < blocks=%d but nothing spilled", frames, tt.Blocks())
	}
}

func TestPagedMatchesSerial(t *testing.T) {
	for _, n := range []int{16, 33, 64, 100, 129} {
		for _, tile := range []int{4, 8, 16} {
			src := workload.Chain[float32](n, int64(n*31+tile))
			// Frames well below the block count: the solve must page.
			checkPagedParity(t, src, tile, 6, 1)
			checkPagedParity(t, src, tile, 6, 4)
		}
	}
}

func TestPagedMatchesSerialF64(t *testing.T) {
	src := workload.Dense[float64](96, 7)
	checkPagedParity(t, src, 8, 5, 3)
}

func TestPagedHealsTornWrites(t *testing.T) {
	// A low-rate torn-write injector: some spilled finals page back in
	// corrupt; the solve must demote the cone, recompute, and still match
	// the serial answer bit-for-bit.
	src := workload.Chain[float32](96, 1234)
	ref := solveRef(src)
	tt := tri.ToTiled(src, 8)
	path := filepath.Join(t.TempDir(), "solve.npsp")
	p, err := pager.Create(path, tt, pager.Options{
		Frames: 5,
		Faults: &pager.DiskFaults{Rate: 0.05, Seed: 42, Kinds: []pager.DiskFaultKind{pager.DiskFaultTorn}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got := pagedSolveToRowMajor(t, p, PagedOptions{Workers: 4, Logf: t.Logf})
	if i, j, av, bv, diff := tri.FirstDiff[float32](ref, got); diff {
		t.Fatalf("first diff at (%d,%d): serial=%v paged=%v", i, j, av, bv)
	}
	if st := p.Stats(); st.FaultedPages == 0 {
		t.Skip("fault schedule hit no page-in this run; schedule-dependent under concurrency")
	} else if st.PageHeals == 0 {
		t.Errorf("faulted pages (%d) but no heals recorded: %+v", st.FaultedPages, st)
	}
}

func TestPagedHealsBitFlips(t *testing.T) {
	src := workload.Dense[float32](64, 99)
	ref := solveRef(src)
	tt := tri.ToTiled(src, 8)
	path := filepath.Join(t.TempDir(), "solve.npsp")
	p, err := pager.Create(path, tt, pager.Options{
		Frames: 4,
		Faults: &pager.DiskFaults{Rate: 0.05, Seed: 7, Kinds: []pager.DiskFaultKind{pager.DiskFaultFlip, pager.DiskFaultEIO}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got := pagedSolveToRowMajor(t, p, PagedOptions{Workers: 2, Logf: t.Logf})
	if i, j, av, bv, diff := tri.FirstDiff[float32](ref, got); diff {
		t.Fatalf("first diff at (%d,%d): serial=%v paged=%v", i, j, av, bv)
	}
}

func TestPagedENOSPCDegradesAndStillSolves(t *testing.T) {
	// Total ENOSPC: every spill fails, the pager degrades to resident
	// growth, and the solve still completes correctly fully in memory.
	src := workload.Chain[float32](64, 5)
	ref := solveRef(src)
	tt := tri.ToTiled(src, 8)
	path := filepath.Join(t.TempDir(), "solve.npsp")
	p, err := pager.Create(path, tt, pager.Options{
		Frames: 4,
		Faults: &pager.DiskFaults{Rate: 1, Kinds: []pager.DiskFaultKind{pager.DiskFaultENOSPC}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got := pagedSolveToRowMajor(t, p, PagedOptions{Workers: 2, Logf: t.Logf})
	if i, j, av, bv, diff := tri.FirstDiff[float32](ref, got); diff {
		t.Fatalf("first diff at (%d,%d): serial=%v paged=%v", i, j, av, bv)
	}
	if st := p.Stats(); st.ENOSPCDegradations == 0 {
		t.Error("no ENOSPC degradation recorded under a rate-1 ENOSPC injector")
	}
}

func TestPagedResumeAfterSimulatedKill(t *testing.T) {
	// Partial run in wavefront order, commit, then abandon the pager
	// handle un-Closed — exactly the state SIGKILL leaves behind. A fresh
	// Open + Resume must recover the committed finals, recompute only the
	// remainder, and match the serial answer bit-for-bit.
	src := workload.Dense[float32](96, 321)
	ref := solveRef(src)
	tt := tri.ToTiled(src, 8)
	path := filepath.Join(t.TempDir(), "solve.npsp")
	p, err := pager.Create(path, tt, pager.Options{Frames: 5, CommitEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	mul, err := ResolveStage1Shape[float32](perfmodel.KernelAuto, p.Tile(), p.Len())
	if err != nil {
		t.Fatal(err)
	}
	m := tt.Blocks()
	total := m * (m + 1) / 2
	donePartial := 0
	for d := 0; d < m && donePartial < total/3; d++ {
		for bi := 0; bi+d < m && donePartial < total/3; bi++ {
			if _, err := computePagedBlock(p, bi, bi+d, mul); err != nil {
				t.Fatal(err)
			}
			donePartial++
		}
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	// No Close: the handle is abandoned mid-flight.

	p2, err := pager.Open[float32](path, pager.Options{Frames: 5})
	if err != nil {
		t.Fatalf("Open after simulated kill: %v", err)
	}
	defer p2.Close()
	recovered := 0
	for bi := 0; bi < m; bi++ {
		for bj := bi; bj < m; bj++ {
			if p2.IsFinal(bi, bj) {
				recovered++
			}
		}
	}
	if recovered == 0 {
		t.Fatal("no blocks recovered from committed index")
	}
	if recovered >= total {
		t.Fatalf("all %d blocks recovered from a %d-block partial run", recovered, donePartial)
	}
	got := pagedSolveToRowMajor(t, p2, PagedOptions{Workers: 2, Resume: true, Logf: t.Logf})
	if i, j, av, bv, diff := tri.FirstDiff[float32](ref, got); diff {
		t.Fatalf("resumed solve diverged at (%d,%d): serial=%v paged=%v", i, j, av, bv)
	}
}
