package npdp

import (
	"cellnpdp/internal/kernel"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// SolveTiledScalar runs the tiled algorithm on the new data layout with
// plain scalar per-element loops — the same block staging and contiguous
// block slices as SolveTiled, but no 4×4 computing-block register
// blocking. It isolates the "new data layout" bar of the paper's speedup
// breakdown (Figures 10 and 11) from the SPE-procedure bar: NDL fixes the
// memory behaviour, the SPE procedure then fixes the instruction stream.
// Returns the number of scalar relaxations (including padded cells).
func SolveTiledScalar[E semiring.Elem](t *tri.Tiled[E]) (int64, error) {
	if err := kernel.CheckTile(t.Tile()); err != nil {
		return 0, err
	}
	ts := t.Tile()
	m := t.Blocks()
	var relax int64
	for bj := 0; bj < m; bj++ {
		for bi := bj; bi >= 0; bi-- {
			if bi == bj {
				relax += kernel.ScalarStage2Diag(t.Block(bj, bj), ts)
				continue
			}
			d := t.Block(bi, bj)
			for k := bi + 1; k < bj; k++ {
				relax += kernel.ScalarMulMinPlus(d, t.Block(bi, k), t.Block(k, bj), ts)
			}
			relax += kernel.ScalarStage2OffDiag(d, t.Block(bi, bi), t.Block(bj, bj), ts)
		}
	}
	return relax, nil
}
