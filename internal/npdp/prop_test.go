package npdp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

// TestTriangleInequalityInvariant: after any engine finishes, no
// relaxation can still improve a cell — d[i][j] ≤ d[i][k] + d[k][j]
// exactly, for every (i, k, j). This is the fixed-point definition of the
// recurrence and must hold bit-exactly.
func TestTriangleInequalityInvariant(t *testing.T) {
	check := func(m *tri.RowMajor[float32]) {
		t.Helper()
		n := m.Len()
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ {
				v := m.At(i, j)
				for k := i; k < j; k++ {
					if w := m.At(i, k) + m.At(k, j); w < v {
						t.Fatalf("triangle inequality violated at (%d,%d) via k=%d: %v > %v", i, j, k, v, w)
					}
				}
			}
		}
	}
	src := workload.Chain[float32](80, 3)
	ser := src.Clone()
	SolveSerial(ser)
	check(ser)
	tt := tri.ToTiled(src, 16)
	if _, err := SolveParallel(tt, ParallelOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	check(tri.ToRowMajor(tt))
}

// TestSolveIdempotent: a solved table is a fixed point — solving again
// changes nothing.
func TestSolveIdempotent(t *testing.T) {
	m := workload.Dense[float32](60, 9)
	SolveSerial(m)
	again := m.Clone()
	SolveSerial(again)
	if !tri.Equal[float32](m, again) {
		t.Error("second solve changed a solved table")
	}
}

// TestSolveMonotone: lowering any initial cell can never raise any output
// cell (min-plus closure is monotone in its inputs).
func TestSolveMonotone(t *testing.T) {
	if err := quick.Check(func(seed int64, cellPick uint16, delta uint8) bool {
		const n = 40
		rng := rand.New(rand.NewSource(seed))
		base := workload.Dense[float32](n, seed)
		// Pick an off-diagonal cell and lower it.
		i := rng.Intn(n - 1)
		j := i + 1 + int(cellPick)%(n-1-i)
		lowered := base.Clone()
		lowered.Set(i, j, base.At(i, j)-float32(delta)-1)
		SolveSerial(base)
		SolveSerial(lowered)
		for jj := 0; jj < n; jj++ {
			for ii := 0; ii <= jj; ii++ {
				if lowered.At(ii, jj) > base.At(ii, jj) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestClosureEqualsAllPairsMinPath: with the chain workload the closure
// equals the min-cost "path" over the adjacency costs — compare against
// an independent Floyd-Warshall-style reference on an interval DAG.
func TestClosureEqualsIntervalShortestPath(t *testing.T) {
	const n = 48
	src := workload.Chain[float32](n, 21)
	// Independent reference: dist over interval graph where edge
	// (i → i+1) costs the adjacent-span init, composition by splitting.
	ref := make([][]float32, n)
	for i := range ref {
		ref[i] = make([]float32, n)
		for j := range ref[i] {
			ref[i][j] = semiring.Inf[float32]()
		}
		ref[i][i] = 0
	}
	for i := 0; i+1 < n; i++ {
		ref[i][i+1] = src.At(i, i+1)
	}
	for span := 2; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			for k := i + 1; k < j; k++ {
				if w := ref[i][k] + ref[k][j]; w < ref[i][j] {
					ref[i][j] = w
				}
			}
		}
	}
	got := src.Clone()
	SolveSerial(got)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			if got.At(i, j) != ref[i][j] {
				t.Fatalf("cell (%d,%d): engine %v vs interval reference %v", i, j, got.At(i, j), ref[i][j])
			}
		}
	}
}

// TestEnginesAgreeQuick fuzzes sizes/tiles/workers across all engines.
func TestEnginesAgreeQuick(t *testing.T) {
	mach := newTestMachine(t)
	if err := quick.Check(func(seed int64, n16 uint8, tilePick, workerPick uint8) bool {
		n := 8 + int(n16)%120
		tile := 4 * (1 + int(tilePick)%5)
		workers := 1 + int(workerPick)%8
		src := workload.Chain[float32](n, seed)
		ref := solveRef(src)

		tt := tri.ToTiled(src, tile)
		if _, err := SolveTiled(tt); err != nil || !tri.Equal[float32](ref, tri.ToRowMajor(tt)) {
			return false
		}
		tp := tri.ToTiled(src, tile)
		if _, err := SolveParallel(tp, ParallelOptions{Workers: workers}); err != nil || !tri.Equal[float32](ref, tri.ToRowMajor(tp)) {
			return false
		}
		tc := tri.ToTiled(src, tile)
		opts := cellOpts(1 + workers%8)
		if _, err := SolveCell(tc, mach, opts); err != nil || !tri.Equal[float32](ref, tri.ToRowMajor(tc)) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
