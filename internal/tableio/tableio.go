// Package tableio serializes triangular DP tables: a small self-
// describing binary format (magic, version, element width, problem size,
// then the upper-triangle cells row-major in little-endian IEEE floats).
// It lets the CLI solve once and verify or post-process later, and lets
// engines running in different processes compare results byte-for-byte.
package tableio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// Magic identifies the format.
const Magic = "NPDP"

// Version is the current format version.
const Version uint16 = 1

// header is the fixed-size file prologue.
type header struct {
	Magic     [4]byte
	Version   uint16
	ElemBytes uint16
	N         uint64
}

// Write serializes the table to w.
func Write[E semiring.Elem](w io.Writer, m *tri.RowMajor[E]) error {
	bw := bufio.NewWriter(w)
	var e E
	h := header{Version: Version, ElemBytes: uint16(ElemWidth(e)), N: uint64(m.Len())}
	copy(h.Magic[:], Magic)
	if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
		return fmt.Errorf("tableio: writing header: %w", err)
	}
	n := m.Len()
	buf := make([]byte, 8)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			PutElem(buf, m.At(i, j))
			if _, err := bw.Write(buf[:ElemWidth(e)]); err != nil {
				return fmt.Errorf("tableio: writing cell (%d,%d): %w", i, j, err)
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a table written by Write. The element type must
// match the file's element width.
func Read[E semiring.Elem](r io.Reader) (*tri.RowMajor[E], error) {
	br := bufio.NewReader(r)
	var h header
	if err := binary.Read(br, binary.LittleEndian, &h); err != nil {
		return nil, fmt.Errorf("tableio: reading header: %w", err)
	}
	if string(h.Magic[:]) != Magic {
		return nil, fmt.Errorf("tableio: bad magic %q", h.Magic)
	}
	if h.Version != Version {
		return nil, fmt.Errorf("tableio: unsupported version %d", h.Version)
	}
	var e E
	if int(h.ElemBytes) != ElemWidth(e) {
		return nil, fmt.Errorf("tableio: file holds %d-byte elements, requested type has %d", h.ElemBytes, ElemWidth(e))
	}
	if h.N == 0 || h.N > 1<<24 {
		return nil, fmt.Errorf("tableio: implausible problem size %d", h.N)
	}
	n := int(h.N)
	m := tri.NewRowMajor[E](n)
	buf := make([]byte, ElemWidth(e))
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("tableio: reading cell (%d,%d): %w", i, j, err)
			}
			m.Set(i, j, GetElem[E](buf))
		}
	}
	return m, nil
}

// ElemWidth returns the byte width of E (4 for float32, 8 for float64).
// Exported so sibling codecs (the resilience checkpoint format) share the
// exact element encoding.
func ElemWidth(e any) int {
	if _, ok := e.(float64); ok {
		return 8
	}
	return 4
}

// PutElem encodes v into buf (little-endian IEEE).
func PutElem[E semiring.Elem](buf []byte, v E) {
	switch x := any(v).(type) {
	case float32:
		binary.LittleEndian.PutUint32(buf, math.Float32bits(x))
	case float64:
		binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
	}
}

// GetElem decodes an element from buf.
func GetElem[E semiring.Elem](buf []byte) E {
	var e E
	switch any(e).(type) {
	case float32:
		return E(math.Float32frombits(binary.LittleEndian.Uint32(buf)))
	default:
		return E(math.Float64frombits(binary.LittleEndian.Uint64(buf)))
	}
}
