package tableio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

func TestRoundTripF32(t *testing.T) {
	src := workload.Dense[float32](37, 5)
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := Read[float32](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tri.Equal[float32](src, got) {
		t.Fatal("round trip changed the table")
	}
}

func TestRoundTripF64(t *testing.T) {
	src := workload.Dense[float64](21, 9)
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := Read[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tri.Equal[float64](src, got) {
		t.Fatal("f64 round trip changed the table")
	}
}

func TestRoundTripQuick(t *testing.T) {
	if err := quick.Check(func(seed int64, n8 uint8) bool {
		n := 1 + int(n8)%60
		src := workload.Dense[float32](n, seed)
		var buf bytes.Buffer
		if Write(&buf, src) != nil {
			return false
		}
		got, err := Read[float32](&buf)
		return err == nil && tri.Equal[float32](src, got)
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTypeMismatchRejected(t *testing.T) {
	src := workload.Dense[float32](8, 1)
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatal(err)
	}
	if _, err := Read[float64](&buf); err == nil || !strings.Contains(err.Error(), "element") {
		t.Errorf("f64 read of f32 file: %v", err)
	}
}

func TestCorruptInputsRejected(t *testing.T) {
	if _, err := Read[float32](bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Read[float32](strings.NewReader("JUNKJUNKJUNKJUNKJUNK")); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated body.
	src := workload.Dense[float32](20, 2)
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read[float32](bytes.NewReader(trunc)); err == nil {
		t.Error("truncated file accepted")
	}
	// Implausible size: header with huge N.
	var h bytes.Buffer
	h.WriteString("NPDP")
	h.Write([]byte{1, 0})                  // version 1
	h.Write([]byte{4, 0})                  // elem bytes 4
	h.Write(bytes.Repeat([]byte{0xFF}, 8)) // N = 2^64-1
	if _, err := Read[float32](&h); err == nil {
		t.Error("absurd size accepted")
	}
}
