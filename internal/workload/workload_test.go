package workload

import (
	"strings"
	"testing"

	"cellnpdp/internal/semiring"
)

func TestChainDeterministic(t *testing.T) {
	a := Chain[float32](50, 7)
	b := Chain[float32](50, 7)
	c := Chain[float32](50, 8)
	same, diff := true, false
	for j := 0; j < 50; j++ {
		for i := 0; i <= j; i++ {
			if a.At(i, j) != b.At(i, j) {
				same = false
			}
			if a.At(i, j) != c.At(i, j) {
				diff = true
			}
		}
	}
	if !same {
		t.Error("same seed produced different instances")
	}
	if !diff {
		t.Error("different seeds produced identical instances")
	}
}

func TestChainShape(t *testing.T) {
	m := Chain[float64](20, 1)
	inf := semiring.Inf[float64]()
	for i := 0; i < 20; i++ {
		if m.At(i, i) != 0 {
			t.Errorf("diagonal (%d,%d) = %v", i, i, m.At(i, i))
		}
		if i+1 < 20 {
			v := m.At(i, i+1)
			if v < 1 || v >= 100 {
				t.Errorf("adjacent span (%d,%d) = %v outside [1,100)", i, i+1, v)
			}
		}
		for j := i + 2; j < 20; j++ {
			if m.At(i, j) != inf {
				t.Errorf("long span (%d,%d) = %v, want Inf", i, j, m.At(i, j))
			}
		}
	}
}

func TestDenseShape(t *testing.T) {
	m := Dense[float32](15, 2)
	for j := 0; j < 15; j++ {
		if m.At(j, j) != 0 {
			t.Errorf("diagonal not 0 at %d", j)
		}
		for i := 0; i < j; i++ {
			v := m.At(i, j)
			if v < 0 || v >= 100 {
				t.Errorf("cell (%d,%d) = %v outside [0,100)", i, j, v)
			}
		}
	}
}

func TestRNA(t *testing.T) {
	s := RNA(200, 5)
	if len(s) != 200 {
		t.Fatalf("length %d", len(s))
	}
	for i := 0; i < len(s); i++ {
		if !strings.ContainsRune(RNABases, rune(s[i])) {
			t.Fatalf("invalid base %q", s[i])
		}
	}
	if RNA(200, 5) != s {
		t.Error("not deterministic")
	}
	if RNA(200, 6) == s {
		t.Error("seed ignored")
	}
	// All four bases should appear in a long sequence.
	for _, b := range RNABases {
		if !strings.ContainsRune(s, b) {
			t.Errorf("base %c never generated", b)
		}
	}
}

func TestSizes(t *testing.T) {
	got := Sizes(512, 4096)
	want := []int{512, 1024, 2048, 4096}
	if len(got) != len(want) {
		t.Fatalf("Sizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sizes = %v, want %v", got, want)
		}
	}
	if s := Sizes(100, 50); s != nil {
		t.Errorf("empty sweep = %v", s)
	}
}
