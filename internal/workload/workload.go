// Package workload generates the deterministic, seeded problem instances
// the tests, examples and experiment harness run on. The paper evaluates
// on the Zuker bifurcation recurrence over RNA-derived tables; lacking
// the authors' inputs, these generators produce synthetic instances that
// exercise exactly the same code paths (see DESIGN.md, substitutions).
package workload

import (
	"math/rand"

	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// Chain returns an n-point NPDP instance shaped like the matrix-chain /
// Zuker bifurcation base case: d[i][i] = 0, d[i][i+1] drawn uniformly
// from [1, 100), every other cell at infinity. The recurrence then builds
// all longer spans from adjacent ones, touching every dependence class.
func Chain[E semiring.Elem](n int, seed int64) *tri.RowMajor[E] {
	rng := rand.New(rand.NewSource(seed))
	m := tri.NewRowMajor[E](n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 0)
		if i+1 < n {
			m.Set(i, i+1, E(1+rng.Float64()*99))
		}
	}
	return m
}

// Dense returns an n-point instance with every upper-triangle cell
// initialized to a uniform value in [0, 100) and the diagonal at 0. Every
// relaxation is live, which maximizes kernel sensitivity in tests.
func Dense[E semiring.Elem](n int, seed int64) *tri.RowMajor[E] {
	rng := rand.New(rand.NewSource(seed))
	m := tri.NewRowMajor[E](n)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			m.Set(i, j, E(rng.Float64()*100))
		}
		m.Set(j, j, 0)
	}
	return m
}

// RNABases is the alphabet RNA sequences are drawn from.
const RNABases = "ACGU"

// RNA returns a seeded random RNA sequence of length n.
func RNA(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	for i := range b {
		b[i] = RNABases[rng.Intn(len(RNABases))]
	}
	return string(b)
}

// Sizes returns a geometric sweep of problem sizes from lo doubling up to
// hi inclusive, for the harness' n-sweeps.
func Sizes(lo, hi int) []int {
	var out []int
	for n := lo; n <= hi; n *= 2 {
		out = append(out, n)
	}
	return out
}
