package trace

import (
	"strings"
	"testing"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(0, KindCompute, 0, 1, "x") // must not panic
	if l.Enabled() {
		t.Error("nil log reports enabled")
	}
	if !strings.Contains(l.Gantt(10), "no events") {
		t.Error("nil Gantt should say no events")
	}
	if l.Summarize() != nil {
		t.Error("nil Summarize should be nil")
	}
}

func TestAddDropsEmptyIntervals(t *testing.T) {
	l := &Log{}
	l.Add(0, KindCompute, 5, 5, "zero")
	l.Add(0, KindCompute, 5, 4, "negative")
	if len(l.Events) != 0 {
		t.Errorf("empty intervals recorded: %v", l.Events)
	}
}

func TestGanttShape(t *testing.T) {
	l := &Log{}
	l.Add(0, KindCompute, 0, 0.5, "a")
	l.Add(0, KindDMAWait, 0.5, 1.0, "b")
	l.Add(1, KindCompute, 0.25, 0.75, "c")
	out := l.Gantt(20)
	if !strings.Contains(out, "SPE0") || !strings.Contains(out, "SPE1") {
		t.Fatalf("missing SPE rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	row0 := lines[1]
	if !strings.Contains(row0, "#") || !strings.Contains(row0, "~") {
		t.Errorf("SPE0 row missing compute/wait marks: %q", row0)
	}
	row1 := lines[2]
	if !strings.HasSuffix(strings.Fields(row1)[1][:5], ".") {
		t.Errorf("SPE1 should be idle at the start: %q", row1)
	}
}

func TestComputeWinsOverWaitInBuckets(t *testing.T) {
	l := &Log{}
	l.Add(0, KindDMAWait, 0, 1, "w")
	l.Add(0, KindCompute, 0, 1, "c")
	out := l.Gantt(4)
	row := strings.Split(strings.TrimSpace(out), "\n")[1]
	if strings.Contains(row, "~") {
		t.Errorf("wait visible under compute: %q", row)
	}
}

func TestSummarize(t *testing.T) {
	l := &Log{}
	l.Add(0, KindCompute, 0, 6, "")
	l.Add(0, KindDMAWait, 6, 8, "")
	l.Add(0, KindTask, 0, 8, "t1")
	l.Add(1, KindCompute, 0, 4, "")
	sums := l.Summarize()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	s0 := sums[0]
	if s0.SPE != 0 || s0.Tasks != 1 {
		t.Errorf("s0 = %+v", s0)
	}
	if s0.Compute != 0.75 || s0.DMAWait != 0.25 {
		t.Errorf("s0 fractions = %+v", s0)
	}
	s1 := sums[1]
	if s1.Compute != 0.5 || s1.Idle != 0.5 {
		t.Errorf("s1 fractions = %+v", s1)
	}
	if !strings.Contains(l.String(), "dma-wait") {
		t.Error("summary table missing header")
	}
}

func TestKindString(t *testing.T) {
	if KindCompute.String() != "compute" || KindDMAWait.String() != "dma-wait" || KindTask.String() != "task" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "kind(?)" {
		t.Error("unknown kind")
	}
}
