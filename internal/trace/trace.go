// Package trace records what each simulated SPE spent its virtual time
// on — computing, waiting on DMA tag groups, or idle between tasks — and
// renders the result as a per-SPE Gantt chart and a utilization summary.
// It is the observability layer for the cellsim-backed engine: the view
// that makes double-buffering, load imbalance and bandwidth saturation
// visible.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies an interval of SPE time.
type Kind int

// The interval kinds.
const (
	KindCompute Kind = iota
	KindDMAWait
	KindTask // task envelope (start..end), drawn as context only
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindDMAWait:
		return "dma-wait"
	case KindTask:
		return "task"
	}
	return "kind(?)"
}

// Event is one recorded interval on one SPE.
type Event struct {
	SPE   int
	Kind  Kind
	Start float64
	End   float64
	Label string
}

// Log collects events. A nil *Log is valid and records nothing, so
// engines can thread it unconditionally.
type Log struct {
	Events []Event
}

// Add records an interval; zero-length intervals are dropped.
func (l *Log) Add(spe int, kind Kind, start, end float64, label string) {
	if l == nil || end <= start {
		return
	}
	l.Events = append(l.Events, Event{SPE: spe, Kind: kind, Start: start, End: end, Label: label})
}

// Enabled reports whether events are being collected.
func (l *Log) Enabled() bool { return l != nil }

// span returns the overall [min, max] time covered.
func (l *Log) span() (float64, float64) {
	if l == nil || len(l.Events) == 0 {
		return 0, 0
	}
	lo, hi := l.Events[0].Start, l.Events[0].End
	for _, e := range l.Events {
		if e.Start < lo {
			lo = e.Start
		}
		if e.End > hi {
			hi = e.End
		}
	}
	return lo, hi
}

// spes returns the sorted set of SPE ids present.
func (l *Log) spes() []int {
	seen := map[int]bool{}
	for _, e := range l.Events {
		seen[e.SPE] = true
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Gantt renders per-SPE rows over `width` time buckets: '#' compute,
// '~' DMA wait, '.' idle. When a bucket mixes kinds, compute wins over
// wait wins over idle (the chart shows what the SPE accomplished).
func (l *Log) Gantt(width int) string {
	if l == nil || len(l.Events) == 0 {
		return "(no events)\n"
	}
	if width <= 0 {
		width = 80
	}
	lo, hi := l.span()
	if hi <= lo {
		return "(empty span)\n"
	}
	scale := float64(width) / (hi - lo)
	var b strings.Builder
	fmt.Fprintf(&b, "virtual time %.6fs .. %.6fs, %d buckets of %.3gs\n", lo, hi, width, (hi-lo)/float64(width))
	for _, spe := range l.spes() {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		mark := func(e Event, ch byte, overwrite string) {
			from := int((e.Start - lo) * scale)
			to := int((e.End - lo) * scale)
			if to >= width {
				to = width - 1
			}
			for i := from; i <= to; i++ {
				if strings.IndexByte(overwrite, row[i]) >= 0 {
					row[i] = ch
				}
			}
		}
		for _, e := range l.Events {
			if e.SPE == spe && e.Kind == KindDMAWait {
				mark(e, '~', ".")
			}
		}
		for _, e := range l.Events {
			if e.SPE == spe && e.Kind == KindCompute {
				mark(e, '#', ".~")
			}
		}
		fmt.Fprintf(&b, "SPE%-2d %s\n", spe, row)
	}
	b.WriteString("legend: # compute   ~ dma wait   . idle\n")
	return b.String()
}

// Summary reports per-SPE busy fractions over the run's span.
type Summary struct {
	SPE     int
	Compute float64
	DMAWait float64
	Idle    float64
	Tasks   int
}

// Summarize computes per-SPE time accounting.
func (l *Log) Summarize() []Summary {
	if l == nil {
		return nil
	}
	lo, hi := l.span()
	total := hi - lo
	if total <= 0 {
		return nil
	}
	acc := map[int]*Summary{}
	for _, e := range l.Events {
		s := acc[e.SPE]
		if s == nil {
			s = &Summary{SPE: e.SPE}
			acc[e.SPE] = s
		}
		d := e.End - e.Start
		switch e.Kind {
		case KindCompute:
			s.Compute += d
		case KindDMAWait:
			s.DMAWait += d
		case KindTask:
			s.Tasks++
		}
	}
	out := make([]Summary, 0, len(acc))
	for _, spe := range l.spes() {
		s := acc[spe]
		s.Compute /= total
		s.DMAWait /= total
		s.Idle = 1 - s.Compute - s.DMAWait
		if s.Idle < 0 {
			s.Idle = 0
		}
		out = append(out, *s)
	}
	return out
}

// String renders the summaries as a table.
func (l *Log) String() string {
	sums := l.Summarize()
	if len(sums) == 0 {
		return "(no events)\n"
	}
	var b strings.Builder
	b.WriteString("SPE   tasks  compute  dma-wait  idle\n")
	for _, s := range sums {
		fmt.Fprintf(&b, "%-5d %-6d %6.1f%%  %7.1f%%  %5.1f%%\n",
			s.SPE, s.Tasks, s.Compute*100, s.DMAWait*100, s.Idle*100)
	}
	return b.String()
}
