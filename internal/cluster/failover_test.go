package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cellnpdp/internal/npdp"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

// failoverN sizes the chaos workloads: large enough that the solve runs
// long past several replication heartbeats, so a kill keyed on
// replicated progress genuinely lands mid-wavefront (the testN workload
// finishes inside one heartbeat and the race never opens).
const failoverN = 768

// failoverTile is deliberately small (48×48 block lattice, 1176 tasks)
// so the post-takeover solve has enough runway for chaos injected AFTER
// the failover — a worker kill, a fenced split-brain write — to land
// while the wavefront is still in flight.
const failoverTile = 16

// failoverRef solves the failover workload serially — the oracle.
func failoverRef(t *testing.T) *tri.RowMajor[float32] {
	t.Helper()
	m := workload.Chain[float32](failoverN, testSeed)
	npdp.SolveSerial(m)
	return m
}

// failoverTable builds the failover workload's tiled input.
func failoverTable(t *testing.T) *tri.Tiled[float32] {
	t.Helper()
	return tri.ToTiled(workload.Chain[float32](failoverN, testSeed), failoverTile)
}

// failoverWorkerOptions are worker options tuned for failover tests: a
// generous reconnect budget, a short handshake timeout so a blackholed
// address is abandoned quickly, and a low backoff ceiling so the
// rotation reaches the live leader within a lease period.
func failoverWorkerOptions(name string) WorkerOptions {
	return WorkerOptions{
		Name:             name,
		MaxReconnects:    60,
		HandshakeTimeout: time.Second,
		Reconnect: resilience.RetryPolicy{
			BaseDelay: 25 * time.Millisecond,
			MaxDelay:  250 * time.Millisecond,
			Jitter:    true,
		},
	}
}

// TestFailoverMidWavefront is the tentpole chaos test: a primary
// replicating to a warm standby is killed silently (the Die channel, the
// in-process SIGKILL) mid-wavefront, after the standby has replicated at
// least five tasks; the standby's lease expires, it takes over at epoch
// 2, the workers re-home through their address rotation, one worker is
// ALSO killed after takeover (the PR 7 chaos riding along), and the
// resumed solve still finishes bit-identical to SolveSerial.
func TestFailoverMidWavefront(t *testing.T) {
	ref := failoverRef(t)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	sbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sbTbl := failoverTable(t)
	var tstats Stats
	var sstats StandbyStats
	die := make(chan struct{})
	var dieOnce sync.Once
	var tookOver atomic.Bool
	var killVictim context.CancelFunc // set before any worker connects

	sbOpts := StandbyOptions{
		Options:    testOptions(&tstats),
		LeaseAfter: 700 * time.Millisecond,
		OnDelta: func(done int) {
			// The kill is keyed on REPLICATED progress, not primary
			// progress, so the takeover provably resumes mid-wavefront
			// with real state instead of restarting from zero.
			if done >= 5 {
				dieOnce.Do(func() { close(die) })
			}
		},
		OnTakeover: func(epoch uint32) {
			tookOver.Store(true)
		},
		StandbyStats: &sstats,
	}
	sbOpts.Shards = 2
	sbOpts.Logf = t.Logf
	sbErr := make(chan error, 1)
	go func() { sbErr <- RunStandby(ctx, sbLn, sbTbl, sbOpts) }()

	priTbl := failoverTable(t)
	var pstats Stats
	pOpts := testOptions(&pstats)
	pOpts.Shards = 2
	pOpts.Logf = t.Logf
	// A fast replication pull cadence, so the standby's view trails the
	// wavefront by milliseconds and the kill gate opens early.
	pOpts.HeartbeatEvery = 5 * time.Millisecond
	pOpts.ReplicaAddr = sbLn.Addr().String()
	pOpts.Die = die
	priAddr, priWait := startCoordinator(ctx, t, priTbl, pOpts)

	addrs := priAddr + "," + sbLn.Addr().String()
	var wg sync.WaitGroup
	// The victim's kill (the PR 7 chaos riding along) fires only after
	// it has re-homed to the NEW leader — its first successful dial
	// post-takeover — so the takeover coordinator provably absorbs a
	// worker death of its own, not just the inherited wavefront.
	rejoined := make(chan struct{})
	var rejoinOnce sync.Once
	vopts := failoverWorkerOptions("victim")
	// Near-continuous redial: the victim must be among the first to
	// re-home after takeover or the kill window could close before it
	// ever holds a session on the new leader.
	vopts.Reconnect.BaseDelay = 2 * time.Millisecond
	vopts.Reconnect.MaxDelay = 15 * time.Millisecond
	vopts.MaxReconnects = 2000
	vopts.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil && tookOver.Load() {
			rejoinOnce.Do(func() { close(rejoined) })
		}
		return c, err
	}
	killVictim = startWorker(ctx, t, &wg, addrs, vopts)
	go func() {
		select {
		case <-rejoined:
			time.Sleep(100 * time.Millisecond) // deep enough into the session to hold dispatches
			killVictim()
		case <-ctx.Done():
		}
	}()
	for w := 0; w < 2; w++ {
		startWorker(ctx, t, &wg, addrs, failoverWorkerOptions("survivor"))
	}

	if err := priWait(); !errors.Is(err, ErrDied) {
		t.Fatalf("killed primary returned %v, want ErrDied", err)
	}
	select {
	case err := <-sbErr:
		if err != nil {
			t.Fatalf("standby/takeover run: %v", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("standby did not finish within 90s")
	}
	cancel()
	wg.Wait()

	requireIdentical(t, ref, sbTbl)
	if !sstats.TookOver || sstats.Epoch != 2 {
		t.Fatalf("standby stats = %+v, want a takeover at epoch 2", sstats)
	}
	if sstats.ReplicatedTasks < 5 {
		t.Fatalf("takeover resumed from %d replicated tasks, want >= 5 (the kill gate)", sstats.ReplicatedTasks)
	}
	if tstats.Failovers != 1 || tstats.Epoch != 2 {
		t.Fatalf("takeover coordinator stats failovers=%d epoch=%d, want 1 and 2", tstats.Failovers, tstats.Epoch)
	}
	if tstats.Resumed < 5 {
		t.Fatalf("takeover pre-completed %d tasks from the replica, want >= 5", tstats.Resumed)
	}
	if tstats.Resumed+tstats.Accepted != tstats.Tasks {
		t.Fatalf("resumed %d + accepted %d != %d tasks", tstats.Resumed, tstats.Accepted, tstats.Tasks)
	}
	if tstats.WorkerDeaths < 1 {
		t.Fatalf("post-takeover worker kill was never observed: deaths=%d", tstats.WorkerDeaths)
	}
	t.Logf("takeover: resumed=%d accepted=%d deaths=%d replRecords(primary)=%d",
		tstats.Resumed, tstats.Accepted, tstats.WorkerDeaths, pstats.ReplRecords)
}

// TestFailoverPrimaryFinishesClean pins the no-fault HA path: the
// primary finishes normally, delivers the completion-log tail plus the
// done frame, and the standby returns nil WITHOUT taking over — holding
// the complete solved table, bit-identical to SolveSerial, built from
// delta records alone.
func TestFailoverPrimaryFinishesClean(t *testing.T) {
	ref := serialRef(t)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	sbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sbTbl := testTable(t)
	var tstats Stats
	var sstats StandbyStats
	sbOpts := StandbyOptions{Options: testOptions(&tstats), StandbyStats: &sstats}
	sbOpts.Logf = t.Logf
	sbErr := make(chan error, 1)
	go func() { sbErr <- RunStandby(ctx, sbLn, sbTbl, sbOpts) }()

	priTbl := testTable(t)
	var pstats Stats
	pOpts := testOptions(&pstats)
	pOpts.Logf = t.Logf
	pOpts.ReplicaAddr = sbLn.Addr().String()
	priAddr, priWait := startCoordinator(ctx, t, priTbl, pOpts)

	var wg sync.WaitGroup
	startWorker(ctx, t, &wg, priAddr, WorkerOptions{Name: "w"})

	if err := priWait(); err != nil {
		t.Fatalf("primary: %v", err)
	}
	select {
	case err := <-sbErr:
		if err != nil {
			t.Fatalf("standby returned %v, want nil on a clean primary finish", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("standby did not release after the primary finished")
	}
	cancel()
	wg.Wait()

	if sstats.TookOver {
		t.Fatal("standby took over a healthy primary")
	}
	if sstats.ReplicatedTasks != pstats.Tasks {
		t.Fatalf("standby replicated %d of %d tasks at release", sstats.ReplicatedTasks, pstats.Tasks)
	}
	// The strongest check in the file: the standby's table was built
	// exclusively from streamed NPKD records, and must still be
	// bit-identical to the serial oracle.
	requireIdentical(t, ref, sbTbl)
	requireIdentical(t, ref, priTbl)
	if pstats.ReplRecords < 1 || sstats.Resyncs < 1 {
		t.Fatalf("replication never flowed: records=%d resyncs=%d", pstats.ReplRecords, sstats.Resyncs)
	}
}

// TestSplitBrainFencedWrites is the partition adversary: the old primary
// is blackholed (via proxies) but NEVER killed. The standby's lease
// expires and it takes over at epoch 2; when the partition heals, the
// deposed primary's replication stream reconnects — into the new leader
// — and must be fenced without landing a single write. The primary's run
// ends with the typed *ErrEpochFenced, the new leader's fenced-write
// counter increments, and the solve still finishes bit-identical.
func TestSplitBrainFencedWrites(t *testing.T) {
	ref := failoverRef(t)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	sbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sbTbl := failoverTable(t)

	// The primary reaches its standby through this relay; blackholing it
	// starves the lease without any EOF.
	replProxy, err := NewProxy(sbLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer replProxy.Close()

	var tstats Stats
	var sstats StandbyStats
	sbOpts := StandbyOptions{
		Options:    testOptions(&tstats),
		LeaseAfter: 800 * time.Millisecond,
		OnTakeover: func(uint32) {
			// Heal the replication path the moment leadership changes, so
			// the zombie primary's stream can find the new leader and be
			// fenced — the split-brain write this test exists to stop.
			replProxy.Heal()
		},
		StandbyStats: &sstats,
	}
	sbOpts.Logf = t.Logf
	sbErr := make(chan error, 1)
	go func() { sbErr <- RunStandby(ctx, sbLn, sbTbl, sbOpts) }()

	priTbl := failoverTable(t)
	var pstats Stats
	var once sync.Once
	var cutoff func()
	pOpts := testOptions(&pstats)
	pOpts.Logf = t.Logf
	// The primary must survive its own isolation long enough to be
	// fenced, not die of worker starvation first.
	pOpts.WorkerlessAfter = 60 * time.Second
	pOpts.ReplicaAddr = replProxy.Addr()
	pOpts.OnTaskDone = func(completed int, _ sched.Task) {
		if completed == 30 {
			once.Do(func() { go cutoff() })
		}
	}
	priAddr, priWait := startCoordinator(ctx, t, priTbl, pOpts)

	// Workers reach the primary through their own relay, so the same
	// cutoff blackholes them too — the primary keeps running, hearing
	// nothing, killing nothing.
	workProxy, err := NewProxy(priAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer workProxy.Close()
	cutoff = func() {
		workProxy.Partition()
		replProxy.Partition()
	}

	addrs := workProxy.Addr() + "," + sbLn.Addr().String()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		startWorker(ctx, t, &wg, addrs, failoverWorkerOptions("w"))
	}

	select {
	case err := <-sbErr:
		if err != nil {
			t.Fatalf("standby/takeover run: %v", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("takeover run did not finish within 90s")
	}
	requireIdentical(t, ref, sbTbl)

	err = priWait()
	var fenced *ErrEpochFenced
	if !errors.As(err, &fenced) {
		t.Fatalf("blackholed primary returned %v, want *ErrEpochFenced", err)
	}
	if fenced.Epoch != 1 || fenced.Current != 2 {
		t.Fatalf("fence carries epochs %d/%d, want deposed 1, current 2", fenced.Epoch, fenced.Current)
	}
	cancel()
	wg.Wait()

	if !sstats.TookOver || sstats.Epoch != 2 {
		t.Fatalf("standby stats = %+v, want a takeover at epoch 2", sstats)
	}
	if tstats.FencedWrites < 1 {
		t.Fatalf("new leader fenced %d writes, want >= 1 (the zombie's replication hello)", tstats.FencedWrites)
	}
	t.Logf("fenced=%d resumed=%d accepted=%d", tstats.FencedWrites, tstats.Resumed, tstats.Accepted)
}

// TestInstallEpochFence pins the install-side fence point with direct
// coordinator state: a result sealed under another leader's epoch —
// whether a pre-failover replay (stale) or a forged future epoch — is
// dropped before the generation logic runs, counts as a fenced write,
// and releases no pipeline slot. A same-epoch stale-generation result
// still takes the PR 7 stale path, not the fence.
func TestInstallEpochFence(t *testing.T) {
	g, err := sched.NewGraph(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	co := &coordinator[float32]{
		opts:     Options{MaxInflight: 2, Logf: t.Logf},
		g:        g,
		shards:   NewSharding(g.SchedTiles, 1),
		epoch:    2,
		state:    make([]int, len(g.Tasks)),
		gen:      make([]uint32, len(g.Tasks)),
		inflight: make(map[int]*session[float32]),
		sessions: make(map[*session[float32]]struct{}),
	}
	co.queues = make([][]int, co.shards.NumShards())
	c1, c2 := net.Pipe()
	defer c2.Close()
	sess := &session[float32]{id: 0, name: "w#0", conn: c1, out: make(chan outFrame, 8)}
	co.sessions[sess] = struct{}{}
	co.state[0] = tsInflight
	co.inflight[0] = sess
	co.gen[0] = 5
	sess.inflight = 1

	check := func(step string, wantFenced, wantStale int) {
		t.Helper()
		if co.stats.FencedWrites != wantFenced || co.stats.StaleResults != wantStale {
			t.Fatalf("%s: fenced=%d stale=%d, want %d/%d", step, co.stats.FencedWrites, co.stats.StaleResults, wantFenced, wantStale)
		}
		if co.state[0] != tsInflight || co.inflight[0] != sess || sess.inflight != 1 {
			t.Fatalf("%s: task state disturbed (state=%d inflight=%d)", step, co.state[0], sess.inflight)
		}
		if co.stats.Accepted != 0 {
			t.Fatalf("%s: a rejected result was installed", step)
		}
	}

	// A pre-failover result replayed at the new leader: right task,
	// right generation, stale epoch.
	if fin, err := co.install(sess, taskMsg{Epoch: 1, Gen: 5, TaskID: 0}); fin || err != nil {
		t.Fatalf("stale-epoch install = (%v, %v)", fin, err)
	}
	check("stale epoch", 1, 0)

	// A forged frame from the future is equally not ours to install.
	if fin, err := co.install(sess, taskMsg{Epoch: 3, Gen: 5, TaskID: 0}); fin || err != nil {
		t.Fatalf("future-epoch install = (%v, %v)", fin, err)
	}
	check("future epoch", 2, 0)

	// Same epoch, stale generation: the PR 7 path, distinct counter.
	if fin, err := co.install(sess, taskMsg{Epoch: 2, Gen: 4, TaskID: 0}); fin || err != nil {
		t.Fatalf("stale-gen install = (%v, %v)", fin, err)
	}
	check("stale generation", 2, 1)
}

// standbyResponder is a fake never-leading standby: it answers every
// worker hello with the retryable standby frame and closes.
func standbyResponder(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.SetDeadline(time.Now().Add(10 * time.Second))
				if typ, _, err := readFrame(c); err != nil || typ != frameHello {
					return
				}
				writeFrame(c, frameStandby, nil)
			}(c)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// TestWorkerBackoffCarriesAcrossTargets pins the satellite fix: a worker
// rotating between two coordinators that both refuse to lead keeps ONE
// consecutive-failure count, so its backoff keeps doubling across the
// address switches instead of restarting at the base on every new
// target — the hot-loop a flapping pair could otherwise sustain. The
// injected Sleep seam makes the schedule exactly Backoff(1..budget).
func TestWorkerBackoffCarriesAcrossTargets(t *testing.T) {
	a1, stop1 := standbyResponder(t)
	defer stop1()
	a2, stop2 := standbyResponder(t)
	defer stop2()

	var slept []time.Duration
	policy := resilience.RetryPolicy{
		BaseDelay: 10 * time.Millisecond,
		Jitter:    false,
		Sleep:     func(d time.Duration) { slept = append(slept, d) },
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := RunWorker(ctx, a1+" , "+a2, WorkerOptions{
		Name:          "flapper",
		MaxReconnects: 2, // budget = 2 per address × 2 addresses = 4
		Reconnect:     policy,
	})
	if err == nil || !strings.Contains(err.Error(), "reconnect budget") {
		t.Fatalf("flapping pair returned %v, want a budget-exhausted error", err)
	}
	if len(slept) != 4 {
		t.Fatalf("worker slept %d times (%v), want 4 (the whole budget)", len(slept), slept)
	}
	for i, d := range slept {
		if want := policy.Backoff(i + 1); d != want {
			t.Fatalf("sleep %d = %v, want %v: the failure count restarted across a target switch", i+1, d, want)
		}
	}
}

// TestWorkerRefusesDeposedLeader pins the worker half of the split-brain
// fence: a worker that has been welcomed at epoch 3 refuses a welcome
// from an epoch-1 coordinator (a deposed leader still answering its
// door) with the typed rejection, before computing anything.
func TestWorkerRefusesDeposedLeader(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c2.SetDeadline(time.Now().Add(10 * time.Second))
		typ, payload, err := readFrame(c2)
		if err != nil || typ != frameHello {
			t.Errorf("handshake = (%d, %v), want hello", typ, err)
			return
		}
		h, err := decodeHello(payload)
		if err != nil || h.Epoch != 3 {
			t.Errorf("hello advertises epoch %d (%v), want the worker's highest (3)", h.Epoch, err)
			return
		}
		w := welcomeMsg{ElemBytes: 4, N: 8, Tile: 4, SchedSide: 1, Shards: 1,
			HeartbeatMS: 50, DeadlineMS: 2000, Epoch: 1}
		writeFrame(c2, frameWelcome, w.encode())
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	highest := uint32(3)
	outcome, err := runSession(ctx, c1, WorkerOptions{
		Name: "fencer", HandshakeTimeout: 5 * time.Second,
		Logf: func(string, ...any) {},
	}, &highest)
	<-done
	if outcome != sessRejected {
		t.Fatalf("outcome = %d, want sessRejected", outcome)
	}
	var fenced *ErrEpochFenced
	if !errors.As(err, &fenced) || fenced.Epoch != 1 || fenced.Current != 3 {
		t.Fatalf("error = %v, want *ErrEpochFenced{1, 3}", err)
	}
	if highest != 3 {
		t.Fatalf("highest epoch regressed to %d", highest)
	}
}

// TestVersionMismatchFailsFast pins the satellite: both sides of a
// protocol version skew fail loudly and terminally — no reconnect loop
// against a build that can never match.
func TestVersionMismatchFailsFast(t *testing.T) {
	t.Run("coordinator-rejects-old-worker", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		tbl := testTable(t)
		opts := testOptions(nil)
		opts.WorkerlessAfter = 10 * time.Second
		addr, _ := startCoordinator(ctx, t, tbl, opts)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		hello := helloMsg{Name: "old"}.encode()
		binary.LittleEndian.PutUint16(hello[4:], 1) // an archaic build
		if err := writeFrame(conn, frameHello, hello); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := readFrame(conn)
		if err != nil || typ != frameFail {
			t.Fatalf("reply = (%d, %v), want a reasoned fail frame", typ, err)
		}
		f, _ := decodeFail(payload)
		if !strings.Contains(f.Reason, "protocol version 1") {
			t.Fatalf("rejection reason %q does not name the version skew", f.Reason)
		}
	})
	t.Run("worker-rejects-old-coordinator", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			c.SetDeadline(time.Now().Add(10 * time.Second))
			if typ, _, err := readFrame(c); err != nil || typ != frameHello {
				return
			}
			// A version-1 welcome: 37 bytes, no epoch field.
			w := make([]byte, 0, 37)
			w = binary.LittleEndian.AppendUint16(w, 1)
			w = binary.LittleEndian.AppendUint16(w, 4)
			w = binary.LittleEndian.AppendUint64(w, 8)
			w = binary.LittleEndian.AppendUint32(w, 4)
			w = binary.LittleEndian.AppendUint32(w, 1)
			w = binary.LittleEndian.AppendUint32(w, 1)
			w = binary.LittleEndian.AppendUint32(w, 0)
			w = append(w, 0)
			w = binary.LittleEndian.AppendUint32(w, 50)
			w = binary.LittleEndian.AppendUint32(w, 2000)
			writeFrame(c, frameWelcome, w)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		err = RunWorker(ctx, ln.Addr().String(), WorkerOptions{Name: "new", MaxReconnects: 1})
		var vErr *ErrProtocolVersion
		if !errors.As(err, &vErr) {
			t.Fatalf("worker returned %v, want the typed *ErrProtocolVersion (terminal, no retries)", err)
		}
		if vErr.Got != 1 || vErr.Want != ProtoVersion {
			t.Fatalf("version error carries %d/%d, want 1/%d", vErr.Got, vErr.Want, ProtoVersion)
		}
	})
}

// TestEpochProtoRoundTrips covers the PR 8 codec surface: epoch-bearing
// hellos and welcomes, the replication hello with its full job
// description, and the bare epoch payload — plus truncation at every
// boundary, which must error rather than hang or mis-parse.
func TestEpochProtoRoundTrips(t *testing.T) {
	h, err := decodeHello(helloMsg{Epoch: 9, Name: "w"}.encode())
	if err != nil || h.Epoch != 9 || h.Name != "w" {
		t.Fatalf("hello round trip = (%+v, %v)", h, err)
	}
	w := welcomeMsg{ElemBytes: 8, N: 512, Tile: 64, SchedSide: 1, Shards: 2, Slot: 1,
		Stage1: 1, HeartbeatMS: 100, DeadlineMS: 900, Epoch: 4}
	gotW, err := decodeWelcome(w.encode())
	if err != nil || gotW != w {
		t.Fatalf("welcome round trip = (%+v, %v), want %+v", gotW, err, w)
	}
	r := replHelloMsg{Epoch: 4, ElemBytes: 4, N: 256, Tile: 32, SchedSide: 2, Shards: 3,
		Stage1: 2, HeartbeatMS: 50, DeadlineMS: 2000, Name: "primary"}
	gotR, err := decodeReplHello(r.encode())
	if err != nil || gotR != r {
		t.Fatalf("replication hello round trip = (%+v, %v), want %+v", gotR, err, r)
	}
	wire := r.encode()
	for cut := 0; cut < len(wire); cut++ {
		if _, err := decodeReplHello(wire[:cut]); err == nil {
			t.Fatalf("replication hello truncated at %d accepted", cut)
		}
	}
	if _, err := decodeReplHello(append(r.encode(), 0)); err == nil {
		t.Fatal("trailing bytes after replication hello accepted")
	}
	ep, err := decodeEpoch(encodeEpoch(7))
	if err != nil || ep != 7 {
		t.Fatalf("epoch round trip = (%d, %v)", ep, err)
	}
	if _, err := decodeEpoch([]byte{1, 2, 3}); err == nil {
		t.Fatal("short epoch payload accepted")
	}
	// A taskMsg's epoch must survive the trip — it is the fence's input.
	m := taskMsg{Epoch: 6, Gen: 2, TaskID: 3}
	back, err := decodeTaskMsg(m.encode())
	if err != nil || back.Epoch != 6 {
		t.Fatalf("task epoch round trip = (%+v, %v)", back, err)
	}
}
