package cluster

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is the network-partition chaos fixture: a TCP relay placed
// between a worker and the coordinator. Partition() makes it a black
// hole — established connections stay open but no byte crosses in
// either direction, which is exactly the failure the heartbeat deadline
// (not the EOF path) must catch. Heal() resumes forwarding; new bytes
// flow again on the surviving connections.
type Proxy struct {
	ln        net.Listener
	target    string
	blackhole atomic.Bool
	closed    atomic.Bool

	mu    sync.Mutex
	conns []net.Conn
}

// NewProxy starts a relay on a loopback port toward target.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address workers should dial instead of the
// coordinator's.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Partition stops all forwarding without closing anything.
func (p *Proxy) Partition() { p.blackhole.Store(true) }

// Heal resumes forwarding.
func (p *Proxy) Heal() { p.blackhole.Store(false) }

// Close tears the relay down, closing every tracked connection.
func (p *Proxy) Close() {
	p.closed.Store(true)
	p.ln.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conns = append(p.conns, c)
}

func (p *Proxy) acceptLoop() {
	for {
		in, err := p.ln.Accept()
		if err != nil {
			return
		}
		out, err := net.Dial("tcp", p.target)
		if err != nil {
			in.Close()
			continue
		}
		p.track(in)
		p.track(out)
		go p.pump(in, out)
		go p.pump(out, in)
	}
}

// pump forwards src→dst in short deadline slices so the blackhole flag
// is observed promptly even with no traffic. While partitioned, reads
// stop entirely (bytes queue in kernel buffers and the sender
// eventually blocks — a real partition, not a connection reset).
func (p *Proxy) pump(src, dst net.Conn) {
	buf := make([]byte, 32<<10)
	for {
		if p.closed.Load() {
			return // a pump parked in the blackhole spin must still observe Close
		}
		if p.blackhole.Load() {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		src.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, err := src.Read(buf)
		if n > 0 {
			if p.blackhole.Load() {
				continue // drop bytes read just as the partition hit
			}
			// A generous per-chunk write bound: chunks are <= 32 KiB to a
			// loopback peer, so a second of no progress means the other
			// pump half (or the peer) is gone, not that the pipe is slow.
			dst.SetWriteDeadline(time.Now().Add(time.Second))
			if _, werr := dst.Write(buf[:n]); werr != nil {
				src.Close()
				return
			}
		}
		if err != nil {
			if netTimeout(err) {
				continue
			}
			dst.Close()
			return
		}
	}
}
