package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"cellnpdp/internal/npdp"
	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// A worker is an SPE of the distributed solve: it holds a local-store
// table, receives the operand blocks of each dispatched task (the DMA
// analogue), computes with the exact engine code path the
// single-process solvers use (npdp.ComputeTask over the pinned stage-1
// kernel), seals its results with CRC32C, and streams them back. It is
// entirely stateless across connections: a reconnect starts a fresh
// session with an empty local table, and the coordinator re-streams
// whatever the worker lacks.

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Name identifies the worker in coordinator logs.
	Name string
	// Inject, when non-nil, applies deterministic silent corruption to
	// result blocks after they are sealed — the chaos harness's
	// transport-corruption model. Only FaultCorrupt plans apply; the
	// attempt key is the dispatch generation, so a healed re-dispatch
	// re-rolls the draw exactly like the single-process heal loop.
	Inject *resilience.Injector
	// Reconnect is the backoff schedule between dial attempts after a
	// lost connection; the zero value gets BaseDelay 50ms, capped
	// full-jitter (resilience.DefaultMaxDelay ceiling). Its Rand and
	// Sleep seams make reconnect schedules deterministic in tests.
	Reconnect resilience.RetryPolicy
	// MaxReconnects bounds consecutive failed attempts per address
	// before giving up; 0 means 8. With multiple addresses the total
	// budget is MaxReconnects × len(addresses). Only a session that
	// made real progress (a dispatch executed, or a long-lived idle
	// connection) resets the count — merely reaching a different
	// address does NOT, so a flapping coordinator pair cannot hot-loop
	// the worker through an ever-restarting backoff.
	MaxReconnects int
	// HandshakeTimeout bounds the hello→welcome exchange per attempt;
	// 0 means 10s. Failover tests lower it so a blackholed address is
	// abandoned quickly and the rotation reaches the live leader.
	HandshakeTimeout time.Duration
	// Logf, when non-nil, receives connection lifecycle logging.
	Logf func(format string, args ...any)
	// Dial overrides the connection factory (tests inject proxies);
	// nil means a plain TCP dial of the given address.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
}

// sessOutcome classifies how a worker session ended.
type sessOutcome int

const (
	// sessLost: the connection or session broke; retry with backoff.
	sessLost sessOutcome = iota
	// sessWorked: the session made real progress before breaking;
	// the consecutive-failure count resets.
	sessWorked
	// sessRejected: the peer is not our leader (standby, fenced, or a
	// stale epoch); rotate to the next address, failure count carries.
	sessRejected
	// sessTerminal: the run is over for good (done, coordinator
	// failure, protocol version mismatch); do not reconnect.
	sessTerminal
)

// RunWorker connects to the coordinator at addr — a comma-separated
// list of candidate addresses when a warm standby exists — and executes
// dispatched tasks until a coordinator sends done (returns nil), the
// context is canceled, a coordinator reports terminal failure, or the
// reconnect budget is exhausted. Lost connections are re-dialed with
// capped full-jitter backoff, rotating through the candidate addresses;
// the worker remembers the highest epoch it has been welcomed at and
// refuses any leader older than that, which is the worker half of the
// failover fence.
func RunWorker(ctx context.Context, addr string, opts WorkerOptions) error {
	if opts.Name == "" {
		opts.Name = "worker"
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Reconnect.BaseDelay <= 0 {
		opts.Reconnect.BaseDelay = 50 * time.Millisecond
		opts.Reconnect.Jitter = true
	}
	if opts.MaxReconnects <= 0 {
		opts.MaxReconnects = 8
	}
	if opts.HandshakeTimeout <= 0 {
		opts.HandshakeTimeout = 10 * time.Second
	}
	var addrs []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("cluster: worker %s: no coordinator address", opts.Name)
	}
	dial := opts.Dial
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	// One failure count across every address: the budget is per-target
	// (MaxReconnects × len(addrs) attempts total) but the count never
	// restarts just because the rotation reached a new address — the
	// pre-failover bug where each address got a fresh cap let a
	// flapping pair keep a worker hot-looping forever.
	budget := opts.MaxReconnects * len(addrs)
	failures := 0
	target := 0
	var highest uint32 // highest epoch ever welcomed at; never accept less
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		a := addrs[target%len(addrs)]
		conn, err := dial(ctx, a)
		if err == nil {
			var outcome sessOutcome
			outcome, err = runSession(ctx, conn, opts, &highest)
			if outcome == sessTerminal {
				return err // nil on coordinator done, terminal otherwise
			}
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			if outcome == sessWorked {
				failures = 0 // real progress; stay on this address
				opts.Logf("cluster: worker %s lost coordinator at %s: %v", opts.Name, a, err)
			} else {
				opts.Logf("cluster: worker %s leaving %s: %v", opts.Name, a, err)
				target++ // not (or no longer) a leader here; rotate
			}
		} else {
			target++
		}
		failures++
		if failures > budget {
			return fmt.Errorf("cluster: worker %s: reconnect budget (%d across %d addresses) exhausted: %w",
				opts.Name, budget, len(addrs), err)
		}
		d := opts.Reconnect.Backoff(failures)
		if opts.Reconnect.Sleep != nil {
			opts.Reconnect.Sleep(d) // injectable seam for deterministic tests
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		} else if !sleepCtx(ctx, d) {
			return ctx.Err()
		}
	}
}

// sessionReader reads the connection under a rolling deadline: every
// Read pushes the read deadline window ahead, so a frame read only
// fails when the link makes no progress for a whole window. A multi-MB
// dispatch frame trickling in on a slow link never times out mid-frame
// — which matters, because abandoning a frame after io.ReadFull
// consumed part of it would leave the next read starting mid-stream, a
// permanent desync.
type sessionReader struct {
	conn   net.Conn
	window time.Duration
}

func (r *sessionReader) Read(p []byte) (int, error) {
	r.conn.SetReadDeadline(time.Now().Add(r.window))
	return r.conn.Read(p)
}

// sleepCtx sleeps d unless ctx ends first; returns false on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// runSession performs one handshake and runs the typed session for the
// element width the welcome announces. highest is the worker's epoch
// memory: the hello advertises it, a welcome below it is refused (the
// peer is a deposed leader), and a welcome at or above it raises it.
func runSession(ctx context.Context, conn net.Conn, opts WorkerOptions, highest *uint32) (sessOutcome, error) {
	defer conn.Close()
	// Unblock the session's reads if the context dies mid-solve; the
	// watcher is reclaimed at session end.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()

	bw := bufio.NewWriter(conn)
	sr := &sessionReader{conn: conn, window: opts.HandshakeTimeout}
	br := bufio.NewReader(sr)
	conn.SetWriteDeadline(time.Now().Add(opts.HandshakeTimeout))
	if err := sendMsg(bw, frameHello, helloMsg{Epoch: *highest, Name: opts.Name}.encode()); err != nil {
		return sessLost, err
	}
	typ, payload, err := readFrame(br)
	if err != nil {
		return sessLost, err
	}
	switch typ {
	case frameFail:
		f, _ := decodeFail(payload)
		return sessTerminal, fmt.Errorf("cluster: coordinator rejected %s: %s", opts.Name, f.Reason)
	case frameStandby:
		return sessRejected, fmt.Errorf("cluster: %s is a standby, not a leader yet", conn.RemoteAddr())
	case frameFenced:
		if ep, derr := decodeEpoch(payload); derr == nil && ep > *highest {
			*highest = ep
		}
		return sessRejected, fmt.Errorf("cluster: %s fenced our connection", conn.RemoteAddr())
	case frameWelcome:
	default:
		return sessLost, fmt.Errorf("cluster: expected welcome, got frame type %d", typ)
	}
	welcome, err := decodeWelcome(payload)
	if err != nil {
		var vErr *ErrProtocolVersion
		if errors.As(err, &vErr) {
			return sessTerminal, err // a build mismatch never heals by retrying
		}
		return sessLost, err
	}
	if welcome.Epoch < *highest {
		// A deposed leader still answering its door. Refusing it here is
		// the split-brain fence: nothing we computed for it could ever
		// install anywhere that matters, so don't compute at all.
		return sessRejected, &ErrEpochFenced{Epoch: welcome.Epoch, Current: *highest, Role: "coordinator"}
	}
	*highest = welcome.Epoch
	opts.Logf("cluster: worker %s joined shard %d/%d at epoch %d (n=%d tile=%d stage1=%v)",
		opts.Name, welcome.Slot, welcome.Shards, welcome.Epoch, welcome.N, welcome.Tile, perfmodel.Kernel(welcome.Stage1))
	switch welcome.ElemBytes {
	case 4:
		return workerSession[float32](ctx, conn, sr, br, bw, welcome, opts, highest)
	case 8:
		return workerSession[float64](ctx, conn, sr, br, bw, welcome, opts, highest)
	}
	return sessLost, fmt.Errorf("cluster: unsupported element width %d", welcome.ElemBytes)
}

// workerSession executes one connection's dispatch loop at a concrete
// element type.
func workerSession[E semiring.Elem](ctx context.Context, conn net.Conn, sr *sessionReader, br *bufio.Reader,
	bw *bufio.Writer, welcome welcomeMsg, opts WorkerOptions, highest *uint32) (sessOutcome, error) {
	t := tri.NewTiled[E](welcome.N, welcome.Tile)
	g, err := sched.NewGraph(t.Blocks(), welcome.SchedSide)
	if err != nil {
		return sessLost, err
	}
	mul, err := npdp.ResolveStage1(perfmodel.Kernel(welcome.Stage1), t)
	if err != nil {
		// The coordinator pinned a kernel this build cannot resolve;
		// that is terminal, not a reconnect case.
		sendMsg(bw, frameFail, failMsg{Reason: err.Error()}.encode())
		return sessTerminal, err
	}
	heartbeat := time.Duration(welcome.HeartbeatMS) * time.Millisecond
	deadline := time.Duration(welcome.DeadlineMS) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = DefaultHeartbeatEvery
	}
	if deadline <= 0 {
		deadline = DefaultDeadlineAfter
	}
	// A session "worked" — resetting the shared reconnect-failure count
	// — once it executes a dispatch, or once it has simply stayed up
	// past the backoff ceiling (a healthy-but-idle connection is not a
	// failure). Anything less (a welcome, pings) can come from a
	// flapping coordinator faster than the backoff can contain it.
	started := time.Now()
	worked := func(base sessOutcome) sessOutcome {
		if base == sessLost && time.Since(started) >= resilience.DefaultMaxDelay {
			return sessWorked
		}
		return base
	}
	outcome := sessLost
	lastSeen := time.Now()
	for {
		if err := ctx.Err(); err != nil {
			return worked(outcome), err
		}
		// Wait for the next frame with the heartbeat period as the
		// slice, so pings flow even when no dispatch arrives and
		// coordinator silence past the deadline drops the connection
		// into the reconnect path. The one-byte peek makes a timeout
		// unambiguous: it only ever fires with zero bytes consumed
		// (anything already received sits in the bufio buffer), so idle
		// waiting can never abandon a partially-read frame. Once a
		// frame has begun, readFrame runs under the rolling deadline
		// window, which fails only on a genuinely stalled link.
		sr.window = heartbeat
		if _, err := br.Peek(1); err != nil {
			if netTimeout(err) {
				if time.Since(lastSeen) > deadline {
					return worked(outcome), fmt.Errorf("cluster: coordinator silent for %v", deadline)
				}
				conn.SetWriteDeadline(time.Now().Add(deadline))
				if err := sendMsg(bw, framePing, nil); err != nil {
					return worked(outcome), err
				}
				continue
			}
			return worked(outcome), err
		}
		sr.window = deadline
		typ, payload, err := readFrame(br)
		if err != nil {
			return worked(outcome), err
		}
		lastSeen = time.Now()
		switch typ {
		case framePing:
			continue
		case frameDone:
			opts.Logf("cluster: worker %s released", opts.Name)
			return sessTerminal, nil
		case frameFail:
			f, _ := decodeFail(payload)
			return sessTerminal, fmt.Errorf("cluster: coordinator failed: %s", f.Reason)
		case frameStandby:
			// The leader demoted mid-session? Treat like a rejection and
			// rotate — somewhere a newer leader exists.
			return sessRejected, fmt.Errorf("cluster: %s declared itself a standby", conn.RemoteAddr())
		case frameFenced:
			// A failover happened: this session's leader is gone and a
			// newer epoch rules. Rotate and re-home.
			if ep, derr := decodeEpoch(payload); derr == nil && ep > *highest {
				*highest = ep
			}
			return sessRejected, fmt.Errorf("cluster: re-homed by epoch fence (session epoch %d)", welcome.Epoch)
		case frameDispatch:
			msg, err := decodeTaskMsg(payload)
			if err != nil {
				return worked(outcome), err
			}
			if msg.Epoch != welcome.Epoch {
				// A dispatch from outside this session's epoch can only
				// be a protocol violation or a replayed frame; computing
				// it would produce a result the fence must then catch.
				conn.SetWriteDeadline(time.Now().Add(deadline))
				ferr := &ErrEpochFenced{Epoch: msg.Epoch, Current: welcome.Epoch, Role: "worker"}
				sendMsg(bw, frameFail, failMsg{Reason: ferr.Error()}.encode())
				return worked(outcome), ferr
			}
			result, err := executeDispatch(t, g, mul, msg, opts.Inject)
			if err != nil {
				// A bad dispatch payload (CRC mismatch on an operand
				// block, unknown task) poisons this session's table;
				// report and reconnect fresh.
				conn.SetWriteDeadline(time.Now().Add(deadline))
				sendMsg(bw, frameFail, failMsg{Reason: err.Error()}.encode())
				return worked(outcome), err
			}
			outcome = sessWorked
			conn.SetWriteDeadline(time.Now().Add(deadline))
			if err := sendMsg(bw, frameResult, result.encode()); err != nil {
				return worked(outcome), err
			}
		default:
			return worked(outcome), fmt.Errorf("cluster: unexpected frame type %d", typ)
		}
	}
}

// netTimeout reports whether err is a read-deadline expiry.
func netTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// executeDispatch installs a dispatch's blocks (seal-verified), computes
// the task, and builds the sealed result. The seal of each produced
// block digests the computed bytes before the injector may flip a bit,
// so injected corruption is silent to the computation but visible to
// the coordinator's install audit — the same fault model as the
// single-process heal loop.
func executeDispatch[E semiring.Elem](t *tri.Tiled[E], g *sched.Graph, mul npdp.Stage1Func[E],
	msg taskMsg, inject *resilience.Injector) (taskMsg, error) {
	if msg.TaskID < 0 || msg.TaskID >= len(g.Tasks) {
		return taskMsg{}, fmt.Errorf("cluster: dispatch for unknown task %d", msg.TaskID)
	}
	task := g.Tasks[msg.TaskID]
	for _, wb := range msg.Blocks {
		if wb.Bi < 0 || wb.Bi > wb.Bj || wb.Bj >= t.Blocks() {
			return taskMsg{}, fmt.Errorf("cluster: dispatch block (%d,%d) outside the block triangle", wb.Bi, wb.Bj)
		}
		if got := rawCRC(wb.Raw); got != wb.CRC {
			return taskMsg{}, &resilience.ErrSealMismatch{
				Bi: wb.Bi, Bj: wb.Bj, BlockID: t.BlockID(wb.Bi, wb.Bj), TaskID: msg.TaskID,
				Want: wb.CRC, Got: got,
			}
		}
		if err := decodeCells(t.Block(wb.Bi, wb.Bj), wb.Raw); err != nil {
			return taskMsg{}, err
		}
	}
	npdp.ComputeTask(t, task, mul)

	own := task.MemoryBlockOrder()
	crcs := make([]uint32, len(own))
	for i, mb := range own {
		crcs[i] = resilience.BlockCRC(t.Block(mb[0], mb[1]))
	}
	if inject != nil && inject.Plan(task.ID, int(msg.Gen)) == resilience.FaultCorrupt {
		draw := inject.CorruptDraw(task.ID, int(msg.Gen))
		mb := own[int((draw>>48)%uint64(len(own)))]
		resilience.CorruptBit(t.Block(mb[0], mb[1]), draw)
	}
	result := taskMsg{Epoch: msg.Epoch, Gen: msg.Gen, TaskID: msg.TaskID, Blocks: make([]wireBlock, len(own))}
	for i, mb := range own {
		result.Blocks[i] = wireBlock{
			Bi: mb[0], Bj: mb[1],
			CRC: crcs[i],
			Raw: encodeCells(t.Block(mb[0], mb[1])),
		}
	}
	return result, nil
}
