package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"cellnpdp/internal/npdp"
	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// A worker is an SPE of the distributed solve: it holds a local-store
// table, receives the operand blocks of each dispatched task (the DMA
// analogue), computes with the exact engine code path the
// single-process solvers use (npdp.ComputeTask over the pinned stage-1
// kernel), seals its results with CRC32C, and streams them back. It is
// entirely stateless across connections: a reconnect starts a fresh
// session with an empty local table, and the coordinator re-streams
// whatever the worker lacks.

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Name identifies the worker in coordinator logs.
	Name string
	// Inject, when non-nil, applies deterministic silent corruption to
	// result blocks after they are sealed — the chaos harness's
	// transport-corruption model. Only FaultCorrupt plans apply; the
	// attempt key is the dispatch generation, so a healed re-dispatch
	// re-rolls the draw exactly like the single-process heal loop.
	Inject *resilience.Injector
	// Reconnect is the backoff schedule between dial attempts after a
	// lost connection; the zero value gets BaseDelay 50ms, capped
	// full-jitter (resilience.DefaultMaxDelay ceiling).
	Reconnect resilience.RetryPolicy
	// MaxReconnects bounds consecutive failed dials before giving up;
	// 0 means 8. A successful session resets the count.
	MaxReconnects int
	// Logf, when non-nil, receives connection lifecycle logging.
	Logf func(format string, args ...any)
	// Dial overrides the connection factory (tests inject proxies);
	// nil means a plain TCP dial of the address given to RunWorker.
	Dial func(ctx context.Context) (net.Conn, error)
}

// RunWorker connects to the coordinator at addr and executes dispatched
// tasks until the coordinator sends done (returns nil), the context is
// canceled, the coordinator reports failure, or the reconnect budget is
// exhausted. Lost connections are re-dialed with capped full-jitter
// backoff — the reconnect half of the coordinator's heartbeat protocol.
func RunWorker(ctx context.Context, addr string, opts WorkerOptions) error {
	if opts.Name == "" {
		opts.Name = "worker"
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Reconnect.BaseDelay <= 0 {
		opts.Reconnect.BaseDelay = 50 * time.Millisecond
		opts.Reconnect.Jitter = true
	}
	if opts.MaxReconnects <= 0 {
		opts.MaxReconnects = 8
	}
	dial := opts.Dial
	if dial == nil {
		dial = func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := dial(ctx)
		if err == nil {
			var done bool
			done, err = runSession(ctx, conn, opts)
			if done {
				return err // nil on coordinator done, terminal on coordinator fail
			}
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			failures = 0 // the dial succeeded; only count consecutive dial failures
			opts.Logf("cluster: worker %s lost coordinator: %v", opts.Name, err)
		}
		failures++
		if failures > opts.MaxReconnects {
			return fmt.Errorf("cluster: worker %s: reconnect budget (%d) exhausted: %w", opts.Name, opts.MaxReconnects, err)
		}
		if !sleepCtx(ctx, opts.Reconnect.Backoff(failures)) {
			return ctx.Err()
		}
	}
}

// sessionReader reads the connection under a rolling deadline: every
// Read pushes the read deadline window ahead, so a frame read only
// fails when the link makes no progress for a whole window. A multi-MB
// dispatch frame trickling in on a slow link never times out mid-frame
// — which matters, because abandoning a frame after io.ReadFull
// consumed part of it would leave the next read starting mid-stream, a
// permanent desync.
type sessionReader struct {
	conn   net.Conn
	window time.Duration
}

func (r *sessionReader) Read(p []byte) (int, error) {
	r.conn.SetReadDeadline(time.Now().Add(r.window))
	return r.conn.Read(p)
}

// sleepCtx sleeps d unless ctx ends first; returns false on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// runSession performs one handshake and runs the typed session for the
// element width the welcome announces. done=true means the run is over
// for good (coordinator finished or reported terminal failure) and the
// worker must not reconnect.
func runSession(ctx context.Context, conn net.Conn, opts WorkerOptions) (done bool, err error) {
	defer conn.Close()
	// Unblock the session's reads if the context dies mid-solve; the
	// watcher is reclaimed at session end.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()

	bw := bufio.NewWriter(conn)
	sr := &sessionReader{conn: conn, window: 10 * time.Second}
	br := bufio.NewReader(sr)
	conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if err := sendMsg(bw, frameHello, helloMsg{Name: opts.Name}.encode()); err != nil {
		return false, err
	}
	typ, payload, err := readFrame(br)
	if err != nil {
		return false, err
	}
	if typ == frameFail {
		f, _ := decodeFail(payload)
		return true, fmt.Errorf("cluster: coordinator rejected %s: %s", opts.Name, f.Reason)
	}
	if typ != frameWelcome {
		return false, fmt.Errorf("cluster: expected welcome, got frame type %d", typ)
	}
	welcome, err := decodeWelcome(payload)
	if err != nil {
		return false, err
	}
	opts.Logf("cluster: worker %s joined shard %d/%d (n=%d tile=%d stage1=%v)",
		opts.Name, welcome.Slot, welcome.Shards, welcome.N, welcome.Tile, perfmodel.Kernel(welcome.Stage1))
	switch welcome.ElemBytes {
	case 4:
		return workerSession[float32](ctx, conn, sr, br, bw, welcome, opts)
	case 8:
		return workerSession[float64](ctx, conn, sr, br, bw, welcome, opts)
	}
	return false, fmt.Errorf("cluster: unsupported element width %d", welcome.ElemBytes)
}

// workerSession executes one connection's dispatch loop at a concrete
// element type.
func workerSession[E semiring.Elem](ctx context.Context, conn net.Conn, sr *sessionReader, br *bufio.Reader,
	bw *bufio.Writer, welcome welcomeMsg, opts WorkerOptions) (done bool, err error) {
	t := tri.NewTiled[E](welcome.N, welcome.Tile)
	g, err := sched.NewGraph(t.Blocks(), welcome.SchedSide)
	if err != nil {
		return false, err
	}
	mul, err := npdp.ResolveStage1(perfmodel.Kernel(welcome.Stage1), t)
	if err != nil {
		// The coordinator pinned a kernel this build cannot resolve;
		// that is terminal, not a reconnect case.
		sendMsg(bw, frameFail, failMsg{Reason: err.Error()}.encode())
		return true, err
	}
	heartbeat := time.Duration(welcome.HeartbeatMS) * time.Millisecond
	deadline := time.Duration(welcome.DeadlineMS) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = DefaultHeartbeatEvery
	}
	if deadline <= 0 {
		deadline = DefaultDeadlineAfter
	}
	lastSeen := time.Now()
	for {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		// Wait for the next frame with the heartbeat period as the
		// slice, so pings flow even when no dispatch arrives and
		// coordinator silence past the deadline drops the connection
		// into the reconnect path. The one-byte peek makes a timeout
		// unambiguous: it only ever fires with zero bytes consumed
		// (anything already received sits in the bufio buffer), so idle
		// waiting can never abandon a partially-read frame. Once a
		// frame has begun, readFrame runs under the rolling deadline
		// window, which fails only on a genuinely stalled link.
		sr.window = heartbeat
		if _, err := br.Peek(1); err != nil {
			if netTimeout(err) {
				if time.Since(lastSeen) > deadline {
					return false, fmt.Errorf("cluster: coordinator silent for %v", deadline)
				}
				conn.SetWriteDeadline(time.Now().Add(deadline))
				if err := sendMsg(bw, framePing, nil); err != nil {
					return false, err
				}
				continue
			}
			return false, err
		}
		sr.window = deadline
		typ, payload, err := readFrame(br)
		if err != nil {
			return false, err
		}
		lastSeen = time.Now()
		switch typ {
		case framePing:
			continue
		case frameDone:
			opts.Logf("cluster: worker %s released", opts.Name)
			return true, nil
		case frameFail:
			f, _ := decodeFail(payload)
			return true, fmt.Errorf("cluster: coordinator failed: %s", f.Reason)
		case frameDispatch:
			msg, err := decodeTaskMsg(payload)
			if err != nil {
				return false, err
			}
			result, err := executeDispatch(t, g, mul, msg, opts.Inject)
			if err != nil {
				// A bad dispatch payload (CRC mismatch on an operand
				// block, unknown task) poisons this session's table;
				// report and reconnect fresh.
				conn.SetWriteDeadline(time.Now().Add(deadline))
				sendMsg(bw, frameFail, failMsg{Reason: err.Error()}.encode())
				return false, err
			}
			conn.SetWriteDeadline(time.Now().Add(deadline))
			if err := sendMsg(bw, frameResult, result.encode()); err != nil {
				return false, err
			}
		default:
			return false, fmt.Errorf("cluster: unexpected frame type %d", typ)
		}
	}
}

// netTimeout reports whether err is a read-deadline expiry.
func netTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// executeDispatch installs a dispatch's blocks (seal-verified), computes
// the task, and builds the sealed result. The seal of each produced
// block digests the computed bytes before the injector may flip a bit,
// so injected corruption is silent to the computation but visible to
// the coordinator's install audit — the same fault model as the
// single-process heal loop.
func executeDispatch[E semiring.Elem](t *tri.Tiled[E], g *sched.Graph, mul npdp.Stage1Func[E],
	msg taskMsg, inject *resilience.Injector) (taskMsg, error) {
	if msg.TaskID < 0 || msg.TaskID >= len(g.Tasks) {
		return taskMsg{}, fmt.Errorf("cluster: dispatch for unknown task %d", msg.TaskID)
	}
	task := g.Tasks[msg.TaskID]
	for _, wb := range msg.Blocks {
		if wb.Bi < 0 || wb.Bi > wb.Bj || wb.Bj >= t.Blocks() {
			return taskMsg{}, fmt.Errorf("cluster: dispatch block (%d,%d) outside the block triangle", wb.Bi, wb.Bj)
		}
		if got := rawCRC(wb.Raw); got != wb.CRC {
			return taskMsg{}, &resilience.ErrSealMismatch{
				Bi: wb.Bi, Bj: wb.Bj, BlockID: t.BlockID(wb.Bi, wb.Bj), TaskID: msg.TaskID,
				Want: wb.CRC, Got: got,
			}
		}
		if err := decodeCells(t.Block(wb.Bi, wb.Bj), wb.Raw); err != nil {
			return taskMsg{}, err
		}
	}
	npdp.ComputeTask(t, task, mul)

	own := task.MemoryBlockOrder()
	crcs := make([]uint32, len(own))
	for i, mb := range own {
		crcs[i] = resilience.BlockCRC(t.Block(mb[0], mb[1]))
	}
	if inject != nil && inject.Plan(task.ID, int(msg.Gen)) == resilience.FaultCorrupt {
		draw := inject.CorruptDraw(task.ID, int(msg.Gen))
		mb := own[int((draw>>48)%uint64(len(own)))]
		resilience.CorruptBit(t.Block(mb[0], mb[1]), draw)
	}
	result := taskMsg{Gen: msg.Gen, TaskID: msg.TaskID, Blocks: make([]wireBlock, len(own))}
	for i, mb := range own {
		result.Blocks[i] = wireBlock{
			Bi: mb[0], Bj: mb[1],
			CRC: crcs[i],
			Raw: encodeCells(t.Block(mb[0], mb[1])),
		}
	}
	return result, nil
}
