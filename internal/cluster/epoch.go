package cluster

import (
	"errors"
	"fmt"
)

// Epoch fencing is the cluster's cross-leader staleness defense, one
// level above PR 7's per-task generations. Generations order dispatches
// within one coordinator's lifetime; the epoch orders coordinator
// lifetimes themselves. Every welcome, dispatch, and result frame
// carries the leader's monotonic epoch, sealed under the frame CRC like
// every other field. A worker learns the epoch at (re)connect and never
// accepts a smaller one again; a coordinator drops any result whose
// epoch is not its own before even looking at the generation. A standby
// assumes leadership only after its lease on the old primary expires,
// and takes over at old-epoch+1 — so a deposed primary that was merely
// partitioned (not dead) finds every write path fenced: workers reject
// its welcome, the new leader rejects its replication stream, and its
// own install path never sees post-failover results.

// ErrEpochFenced reports a frame or connection rejected because it
// carried a stale epoch — the sender is a deposed leader (or a worker
// still bound to one). It is retryable for workers (re-home to the new
// leader) and terminal for a deposed coordinator.
//
//npdplint:watch
type ErrEpochFenced struct {
	// Epoch is the stale epoch the rejected frame carried.
	Epoch uint32
	// Current is the fencing side's epoch at rejection time.
	Current uint32
	// Role describes the rejected party ("coordinator", "worker",
	// "replica") for logs.
	Role string
}

func (e *ErrEpochFenced) Error() string {
	return fmt.Sprintf("cluster: %s fenced: epoch %d is stale (current epoch %d)", e.Role, e.Epoch, e.Current)
}

// ErrProtocolVersion reports a hello/welcome version mismatch. Before
// this type existed a version skew surfaced as a confusing downstream
// decode or checksum error; now both ends fail fast with the two
// versions in hand. It is terminal: no amount of reconnecting fixes a
// build mismatch.
//
//npdplint:watch
type ErrProtocolVersion struct {
	Got, Want uint16
}

func (e *ErrProtocolVersion) Error() string {
	return fmt.Sprintf("cluster: protocol version %d, want %d", e.Got, e.Want)
}

// ErrDied reports that the coordinator's Options.Die channel fired: the
// in-process analogue of SIGKILL for failover tests and the harness.
// Unlike context cancellation, dying is silent — no fail broadcast, no
// final checkpoint, no replication farewell — exactly what a real
// coordinator crash looks like to the rest of the cluster.
var ErrDied = errors.New("cluster: coordinator died (chaos)")
