package cluster

import (
	"os"
	"testing"

	"cellnpdp/internal/testutil"
)

// TestMain runs the suite under the goroutine-leak gate: every session,
// writer, pump, prefetcher, and replicator this package spawns must be
// gone within the grace window after the last test, or the suite fails
// even when each test passed. This is the dynamic half of the gospawn
// analyzer's lifecycle contract.
func TestMain(m *testing.M) { os.Exit(testutil.CheckMain(m)) }
