package cluster

// Sharding partitions the scheduling-block grid's columns into contiguous
// ranges with near-equal task counts. Column bj holds bj+1 tasks (every
// (bi, bj) with bi ≤ bj), so an even column split would load the last
// shard quadratically; the cuts instead track the cumulative task count.
// Contiguous column ranges keep the inter-shard traffic to wavefront
// boundaries: a task's nearest-left predecessor lives in the previous
// column (same shard or the one just left of the cut), its nearest-below
// predecessor in the same column.
type Sharding struct {
	// cuts[s] is the first scheduling column of shard s; cuts[len-1] is
	// the total column count. Shard s owns columns [cuts[s], cuts[s+1]).
	cuts []int
}

// NewSharding builds a sharding of schedTiles columns into k shards
// (clamped to [1, schedTiles] so every shard owns at least one column).
func NewSharding(schedTiles, k int) Sharding {
	if k < 1 {
		k = 1
	}
	if k > schedTiles {
		k = schedTiles
	}
	total := schedTiles * (schedTiles + 1) / 2
	cuts := make([]int, k+1)
	cuts[k] = schedTiles
	col, cum := 0, 0
	for s := 1; s < k; s++ {
		// Advance the cut until the cumulative task count reaches this
		// shard's ideal boundary, but never so far that the remaining
		// shards would run out of columns.
		target := total * s / k
		for cum < target && col < schedTiles-(k-s) {
			cum += col + 1
			col++
		}
		cuts[s] = col
	}
	return Sharding{cuts: cuts}
}

// NumShards returns the shard count.
func (s Sharding) NumShards() int { return len(s.cuts) - 1 }

// Of returns the shard owning scheduling column bj.
func (s Sharding) Of(bj int) int {
	lo, hi := 0, s.NumShards()-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.cuts[mid] <= bj {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Cols returns shard sh's column range [lo, hi).
func (s Sharding) Cols(sh int) (lo, hi int) { return s.cuts[sh], s.cuts[sh+1] }

// TaskCount returns how many tasks shard sh owns.
func (s Sharding) TaskCount(sh int) int {
	lo, hi := s.Cols(sh)
	return hi*(hi+1)/2 - lo*(lo+1)/2
}
