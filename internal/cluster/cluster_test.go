package cluster

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cellnpdp/internal/npdp"
	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

const (
	testN    = 256
	testTile = 32
	testSeed = 99
)

// serialRef solves the test workload with SolveSerial — the bit-identity
// oracle every cluster run is audited against.
func serialRef(t *testing.T) *tri.RowMajor[float32] {
	t.Helper()
	m := workload.Chain[float32](testN, testSeed)
	npdp.SolveSerial(m)
	return m
}

// testTable builds the fresh tiled input the coordinator solves in place.
func testTable(t *testing.T) *tri.Tiled[float32] {
	t.Helper()
	return tri.ToTiled(workload.Chain[float32](testN, testSeed), testTile)
}

// requireIdentical fails unless the cluster-solved table is bit-identical
// to the serial oracle.
func requireIdentical(t *testing.T, ref *tri.RowMajor[float32], got *tri.Tiled[float32]) {
	t.Helper()
	if i, j, av, bv, diff := tri.FirstDiff[float32](ref, got); diff {
		t.Fatalf("cluster result diverges from SolveSerial at (%d,%d): serial %v, cluster %v", i, j, av, bv)
	}
}

// testOptions returns coordinator options tuned for fast tests: short
// heartbeats, pinned scalar kernel (identical on every worker by
// construction), and a bounded workerless wait.
func testOptions(stats *Stats) Options {
	return Options{
		Stage1:          perfmodel.KernelScalar,
		HeartbeatEvery:  50 * time.Millisecond,
		DeadlineAfter:   2 * time.Second,
		WorkerlessAfter: 10 * time.Second,
		Stats:           stats,
	}
}

// startCoordinator launches Coordinate on a loopback listener and returns
// its address plus a wait func for the run's error.
func startCoordinator(ctx context.Context, t *testing.T, tbl *tri.Tiled[float32], opts Options) (addr string, wait func() error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr = ln.Addr().String()
	errc := make(chan error, 1)
	go func() { errc <- Coordinate(ctx, ln, tbl, opts) }()
	return addr, func() error {
		select {
		case err := <-errc:
			return err
		case <-time.After(90 * time.Second):
			t.Fatal("coordinator did not finish within 90s")
			return nil
		}
	}
}

// startWorker launches an in-process worker goroutine. The returned
// cancel is the kill switch (the in-process analogue of SIGKILL: the
// context watcher slams the connection shut mid-whatever); wg drains at
// test end.
func startWorker(ctx context.Context, t *testing.T, wg *sync.WaitGroup, addr string, opts WorkerOptions) context.CancelFunc {
	t.Helper()
	wctx, cancel := context.WithCancel(ctx)
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := RunWorker(wctx, addr, opts)
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Logf("worker %s exited: %v", opts.Name, err)
		}
	}()
	t.Cleanup(cancel)
	return cancel
}

// TestClusterMatchesSerial proves the no-fault distributed solve is
// bit-identical to SolveSerial across worker counts and scheduling-block
// sides, including shards with multiple workers and g>1 operand streaming.
func TestClusterMatchesSerial(t *testing.T) {
	ref := serialRef(t)
	for _, tc := range []struct {
		name      string
		workers   int
		shards    int
		schedSide int
	}{
		{"1worker", 1, 1, 1},
		{"3workers", 3, 3, 1},
		{"2workers-g2", 2, 2, 2},
		{"4workers-2shards", 4, 2, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			tbl := testTable(t)
			var stats Stats
			opts := testOptions(&stats)
			opts.Shards = tc.shards
			opts.SchedSide = tc.schedSide
			addr, wait := startCoordinator(ctx, t, tbl, opts)
			var wg sync.WaitGroup
			for w := 0; w < tc.workers; w++ {
				startWorker(ctx, t, &wg, addr, WorkerOptions{Name: "w", Logf: t.Logf})
			}
			if err := wait(); err != nil {
				t.Fatalf("Coordinate: %v", err)
			}
			cancel()
			wg.Wait()
			requireIdentical(t, ref, tbl)
			if stats.Accepted != stats.Tasks {
				t.Fatalf("accepted %d of %d tasks", stats.Accepted, stats.Tasks)
			}
			if stats.WorkerDeaths != 0 || stats.SealMismatches != 0 {
				t.Fatalf("fault-free run recorded deaths=%d mismatches=%d", stats.WorkerDeaths, stats.SealMismatches)
			}
		})
	}
}

// TestClusterSurvivesWorkerKill kills a worker mid-wavefront (hard
// connection slam, the in-process stand-in for SIGKILL) and proves the
// survivors absorb its in-flight tasks and the result stays
// bit-identical.
func TestClusterSurvivesWorkerKill(t *testing.T) {
	ref := serialRef(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tbl := testTable(t)
	var stats Stats
	var once sync.Once
	var killVictim context.CancelFunc // set before any worker connects
	opts := testOptions(&stats)
	opts.Shards = 3
	opts.Logf = t.Logf
	opts.OnTaskDone = func(completed int, _ sched.Task) {
		if completed == 8 {
			once.Do(func() { go killVictim() })
		}
	}
	addr, wait := startCoordinator(ctx, t, tbl, opts)
	var wg sync.WaitGroup
	killVictim = startWorker(ctx, t, &wg, addr, WorkerOptions{Name: "victim"})
	for w := 0; w < 2; w++ {
		startWorker(ctx, t, &wg, addr, WorkerOptions{Name: "survivor"})
	}
	if err := wait(); err != nil {
		t.Fatalf("Coordinate: %v", err)
	}
	cancel()
	wg.Wait()
	requireIdentical(t, ref, tbl)
	if stats.WorkerDeaths < 1 {
		t.Fatalf("kill was never observed: deaths=%d", stats.WorkerDeaths)
	}
	t.Logf("deaths=%d redispatched=%d accepted=%d", stats.WorkerDeaths, stats.Redispatched, stats.Accepted)
}

// TestClusterHeartbeatPartition routes one worker through the
// network-partition proxy and black-holes it mid-wavefront: no EOF ever
// arrives, so only the heartbeat deadline can declare the death. The
// survivors finish and the result stays bit-identical.
func TestClusterHeartbeatPartition(t *testing.T) {
	ref := serialRef(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tbl := testTable(t)
	var stats Stats
	var once sync.Once
	var proxy *Proxy
	opts := testOptions(&stats)
	opts.Shards = 3
	opts.DeadlineAfter = 400 * time.Millisecond
	opts.Logf = t.Logf
	opts.OnTaskDone = func(completed int, _ sched.Task) {
		if completed == 6 {
			once.Do(proxy.Partition)
		}
	}
	addr, wait := startCoordinator(ctx, t, tbl, opts)
	var err error
	proxy, err = NewProxy(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	var wg sync.WaitGroup
	startWorker(ctx, t, &wg, addr, WorkerOptions{
		Name: "islanded",
		Dial: func(ctx context.Context, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", proxy.Addr())
		},
	})
	for w := 0; w < 2; w++ {
		startWorker(ctx, t, &wg, addr, WorkerOptions{Name: "mainland"})
	}
	if err := wait(); err != nil {
		t.Fatalf("Coordinate: %v", err)
	}
	cancel()
	wg.Wait()
	requireIdentical(t, ref, tbl)
	if stats.WorkerDeaths < 1 {
		t.Fatalf("partition was never declared a death: deaths=%d", stats.WorkerDeaths)
	}
}

// TestClusterCorruptionHeals runs workers that silently flip bits in
// sealed result blocks (seeded, deterministic per task and generation)
// and proves the coordinator detects every flip at install, heals the
// poisoned cone, and converges to the bit-identical answer.
func TestClusterCorruptionHeals(t *testing.T) {
	ref := serialRef(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tbl := testTable(t)
	var stats Stats
	opts := testOptions(&stats)
	opts.Shards = 2
	opts.Heal = true
	opts.Logf = t.Logf
	addr, wait := startCoordinator(ctx, t, tbl, opts)
	inject := &resilience.Injector{Rate: 0.25, Seed: 42, Kinds: []resilience.FaultKind{resilience.FaultCorrupt}}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		startWorker(ctx, t, &wg, addr, WorkerOptions{Name: "flaky", Inject: inject})
	}
	if err := wait(); err != nil {
		t.Fatalf("Coordinate: %v", err)
	}
	cancel()
	wg.Wait()
	requireIdentical(t, ref, tbl)
	if stats.SealMismatches < 1 || stats.HealRounds < 1 {
		t.Fatalf("no corruption was exercised: mismatches=%d healRounds=%d", stats.SealMismatches, stats.HealRounds)
	}
	if stats.RecomputedTasks < 1 {
		t.Fatalf("heal recomputed nothing")
	}
	t.Logf("mismatches=%d healRounds=%d recomputed=%d stale=%d",
		stats.SealMismatches, stats.HealRounds, stats.RecomputedTasks, stats.StaleResults)
}

// TestClusterHealOffFailsTyped proves that with healing disabled the
// first corrupted boundary block aborts the run loudly with the typed
// *resilience.ErrSealMismatch carrying block identity and both digests.
func TestClusterHealOffFailsTyped(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tbl := testTable(t)
	var stats Stats
	opts := testOptions(&stats)
	opts.Heal = false
	addr, wait := startCoordinator(ctx, t, tbl, opts)
	inject := &resilience.Injector{Rate: 1, Seed: 7, Kinds: []resilience.FaultKind{resilience.FaultCorrupt}}
	var wg sync.WaitGroup
	startWorker(ctx, t, &wg, addr, WorkerOptions{Name: "saboteur", Inject: inject})
	err := wait()
	cancel()
	wg.Wait()
	if err == nil {
		t.Fatal("corrupted run with healing off returned nil")
	}
	var mismatch *resilience.ErrSealMismatch
	if !errors.As(err, &mismatch) {
		t.Fatalf("error is not a typed seal mismatch: %v", err)
	}
	if mismatch.Want == mismatch.Got {
		t.Fatalf("mismatch digests are equal: %08x", mismatch.Want)
	}
	if mismatch.TaskID < 0 || mismatch.Bi < 0 || mismatch.Bj < mismatch.Bi {
		t.Fatalf("mismatch lacks block identity: %+v", mismatch)
	}
}

// TestClusterHealExhaustionEscalates drives persistent corruption (every
// attempt of every task flips a bit) through a tiny heal budget and
// proves the ladder runs end to end: heal rounds, then exactly one
// pristine restart, then the typed CorruptionError.
func TestClusterHealExhaustionEscalates(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tbl := testTable(t)
	var stats Stats
	opts := testOptions(&stats)
	opts.Heal = true
	opts.HealAttempts = 2
	addr, wait := startCoordinator(ctx, t, tbl, opts)
	inject := &resilience.Injector{Rate: 1, Seed: 3, Kinds: []resilience.FaultKind{resilience.FaultCorrupt}}
	var wg sync.WaitGroup
	startWorker(ctx, t, &wg, addr, WorkerOptions{Name: "cursed", Inject: inject})
	err := wait()
	cancel()
	wg.Wait()
	if err == nil {
		t.Fatal("persistently corrupted run returned nil")
	}
	var corrupt *resilience.CorruptionError
	if !errors.As(err, &corrupt) {
		t.Fatalf("error is not a typed corruption error: %v", err)
	}
	if corrupt.Healed != 2 {
		t.Fatalf("CorruptionError.Healed = %d, want the full per-block budget 2", corrupt.Healed)
	}
	if stats.PristineRestarts != 1 {
		t.Fatalf("pristine restarts = %d, want exactly 1", stats.PristineRestarts)
	}
	// The budget is per block, so every ready block burns its own
	// HealAttempts rounds (twice: once per restart epoch) before the
	// escalation fires.
	if stats.HealRounds < 2 {
		t.Fatalf("heal rounds = %d, want at least the per-block budget 2", stats.HealRounds)
	}
}

// TestClusterFreshMismatchesDontExhaust pins the per-block heal budget:
// corruption spread across many blocks — each healing cleanly on its
// first recompute — must complete even when the number of detections
// far exceeds HealAttempts. A global budget would escalate to a
// pristine restart and then a CorruptionError here; the per-block
// budget never charges a first-time block.
func TestClusterFreshMismatchesDontExhaust(t *testing.T) {
	ref := serialRef(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tbl := testTable(t)
	var stats Stats
	opts := testOptions(&stats)
	opts.Heal = true
	opts.HealAttempts = 2
	addr, wait := startCoordinator(ctx, t, tbl, opts)
	// Rate 0.1 with this seed yields several first-time mismatches
	// across distinct blocks (6 at generation 0 alone) but no task
	// corrupt at three consecutive generations, so no per-block budget
	// of 2 can ever exhaust — only a global budget would.
	inject := &resilience.Injector{Rate: 0.1, Seed: 13, Kinds: []resilience.FaultKind{resilience.FaultCorrupt}}
	var wg sync.WaitGroup
	startWorker(ctx, t, &wg, addr, WorkerOptions{Name: "flaky", Inject: inject})
	if err := wait(); err != nil {
		t.Fatalf("Coordinate: %v", err)
	}
	cancel()
	wg.Wait()
	requireIdentical(t, ref, tbl)
	t.Logf("mismatches=%d healRounds=%d restarts=%d", stats.SealMismatches, stats.HealRounds, stats.PristineRestarts)
	if stats.HealRounds <= opts.HealAttempts {
		t.Fatalf("heal rounds = %d, want more than HealAttempts=%d to prove the budget is per block",
			stats.HealRounds, opts.HealAttempts)
	}
	if stats.PristineRestarts != 0 {
		t.Fatalf("pristine restarts = %d, want 0: every block healed within its own budget", stats.PristineRestarts)
	}
}

// TestClusterCheckpointResume interrupts a run mid-wavefront, then
// resumes from the NPCK snapshot with fresh workers: the resumed run
// pre-completes checkpointed tasks and still converges bit-identically.
// A third run resumes the final checkpoint with no workers at all and
// must finish instantly.
func TestClusterCheckpointResume(t *testing.T) {
	ref := serialRef(t)
	ckpt := filepath.Join(t.TempDir(), "cluster.npck")

	// Run 1: cancel after 10 accepts; periodic snapshots every 3.
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	tbl1 := testTable(t)
	var stats1 Stats
	var once sync.Once
	opts1 := testOptions(&stats1)
	opts1.CheckpointPath = ckpt
	opts1.CheckpointEvery = 3
	opts1.OnTaskDone = func(completed int, _ sched.Task) {
		if completed == 10 {
			once.Do(func() { go cancel1() })
		}
	}
	addr1, wait1 := startCoordinator(ctx1, t, tbl1, opts1)
	var wg1 sync.WaitGroup
	startWorker(ctx1, t, &wg1, addr1, WorkerOptions{Name: "w"})
	if err := wait1(); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	wg1.Wait()
	if stats1.Checkpoints < 1 {
		t.Fatalf("interrupted run wrote no checkpoints")
	}

	// Run 2: resume and finish.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel2()
	tbl2 := testTable(t)
	var stats2 Stats
	opts2 := testOptions(&stats2)
	opts2.CheckpointPath = ckpt
	opts2.Resume = true
	opts2.Logf = t.Logf
	addr2, wait2 := startCoordinator(ctx2, t, tbl2, opts2)
	var wg2 sync.WaitGroup
	startWorker(ctx2, t, &wg2, addr2, WorkerOptions{Name: "w"})
	if err := wait2(); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	cancel2()
	wg2.Wait()
	requireIdentical(t, ref, tbl2)
	if stats2.Resumed < 3 {
		t.Fatalf("resumed only %d tasks from a checkpoint holding at least one 3-task period", stats2.Resumed)
	}
	if stats2.Resumed+stats2.Accepted != stats2.Tasks {
		t.Fatalf("resumed %d + accepted %d != %d tasks", stats2.Resumed, stats2.Accepted, stats2.Tasks)
	}

	// Run 3: the final checkpoint covers everything; no workers needed.
	ctx3, cancel3 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel3()
	tbl3 := testTable(t)
	var stats3 Stats
	opts3 := testOptions(&stats3)
	opts3.CheckpointPath = ckpt
	opts3.Resume = true
	_, wait3 := startCoordinator(ctx3, t, tbl3, opts3)
	if err := wait3(); err != nil {
		t.Fatalf("fully-resumed run: %v", err)
	}
	requireIdentical(t, ref, tbl3)
	if stats3.Resumed != stats3.Tasks || stats3.Dispatched != 0 {
		t.Fatalf("full resume still dispatched work: resumed=%d/%d dispatched=%d", stats3.Resumed, stats3.Tasks, stats3.Dispatched)
	}
}

// TestClusterNoWorkers proves a workerless cluster fails loudly with the
// typed sentinel after the configured wait, never hanging.
func TestClusterNoWorkers(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tbl := testTable(t)
	opts := testOptions(nil)
	opts.WorkerlessAfter = 300 * time.Millisecond
	_, wait := startCoordinator(ctx, t, tbl, opts)
	err := wait()
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("workerless run returned %v, want ErrNoWorkers", err)
	}
}

// TestWorkerSurvivesTrickledDispatch pins the stream-integrity fix: a
// dispatch frame arriving in pieces, with gaps longer than several
// heartbeat periods between them, must never desync the worker's frame
// stream. The buggy shape this guards against: a heartbeat-period read
// deadline expiring after io.ReadFull consumed part of a frame, the
// partial bytes silently dropped, and the next read starting mid-frame.
func TestWorkerSurvivesTrickledDispatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	wdone := make(chan error, 1)
	go func() {
		wdone <- RunWorker(ctx, ln.Addr().String(), WorkerOptions{Name: "trickle", MaxReconnects: 1, Logf: t.Logf})
	}()
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(25 * time.Second))
	if typ, _, err := readFrame(conn); err != nil || typ != frameHello {
		t.Fatalf("handshake = (%d, %v), want hello", typ, err)
	}
	bw := bufio.NewWriter(conn)
	welcome := welcomeMsg{
		ElemBytes: 4, N: 8, Tile: 4, SchedSide: 1, Shards: 1, Slot: 0,
		Stage1: uint8(perfmodel.KernelScalar), HeartbeatMS: 50, DeadlineMS: 2000,
	}
	if err := sendMsg(bw, frameWelcome, welcome.encode()); err != nil {
		t.Fatal(err)
	}
	// One real dispatch (task 0 has no operand blocks; the worker's
	// zeroed table is a valid input), framed, then fed to the worker in
	// two pieces: 3 bytes of header, a pause spanning six heartbeat
	// read slices, then the rest.
	var frame bytes.Buffer
	if err := writeFrame(&frame, frameDispatch, taskMsg{Gen: 0, TaskID: 0}.encode()); err != nil {
		t.Fatal(err)
	}
	raw := frame.Bytes()
	if _, err := conn.Write(raw[:3]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if _, err := conn.Write(raw[3:]); err != nil {
		t.Fatal(err)
	}
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			t.Fatalf("reading worker frames: %v", err)
		}
		if typ == framePing {
			continue
		}
		if typ != frameResult {
			f, _ := decodeFail(payload)
			t.Fatalf("worker sent frame type %d (%s), want result", typ, f.Reason)
		}
		msg, err := decodeTaskMsg(payload)
		if err != nil {
			t.Fatal(err)
		}
		if msg.TaskID != 0 || msg.Gen != 0 {
			t.Fatalf("result for (task %d, gen %d), want (0, 0)", msg.TaskID, msg.Gen)
		}
		break
	}
	if err := sendMsg(bw, frameDone, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-wdone; err != nil {
		t.Fatalf("worker exited %v after a trickled dispatch, want clean release", err)
	}
}

// TestDeclareDeadBumpsGenerations pins the documented zombie defense:
// declaring a worker dead requeues its in-flight tasks under bumped
// generations, so a late result the dead worker already produced can
// never match the task's current generation again.
func TestDeclareDeadBumpsGenerations(t *testing.T) {
	g, err := sched.NewGraph(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	co := &coordinator[float32]{
		opts:     Options{MaxInflight: 2, Logf: t.Logf},
		g:        g,
		shards:   NewSharding(g.SchedTiles, 1),
		state:    make([]int, len(g.Tasks)),
		gen:      make([]uint32, len(g.Tasks)),
		inflight: make(map[int]*session[float32]),
		sessions: make(map[*session[float32]]struct{}),
	}
	co.queues = make([][]int, co.shards.NumShards())
	c1, c2 := net.Pipe()
	defer c2.Close()
	sess := &session[float32]{id: 0, name: "zombie#0", conn: c1, out: make(chan outFrame, 4)}
	co.sessions[sess] = struct{}{}
	for _, id := range []int{0, 1} {
		co.state[id] = tsInflight
		co.inflight[id] = sess
		co.gen[id] = 3
		sess.inflight++
	}
	co.declareDead(sess, errors.New("test kill"))
	for _, id := range []int{0, 1} {
		if co.gen[id] != 4 {
			t.Fatalf("task %d generation = %d after death, want 4 (bumped)", id, co.gen[id])
		}
		if co.state[id] != tsQueued {
			t.Fatalf("task %d state = %d after death, want requeued", id, co.state[id])
		}
	}
	if len(co.inflight) != 0 {
		t.Fatalf("%d tasks still marked in flight on a dead session", len(co.inflight))
	}
	if co.stats.Redispatched != 2 || co.stats.WorkerDeaths != 1 {
		t.Fatalf("stats = %+v, want 2 redispatched / 1 death", co.stats)
	}
}

// TestConeAcrossShardCut pins the heal cone's behaviour at shard
// boundaries: seeding a corner task in the last column of one shard must
// enumerate its consumers in the next shard exactly once each, and the
// cone must equal the transitive successor closure.
func TestConeAcrossShardCut(t *testing.T) {
	g, err := sched.NewGraph(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSharding(g.SchedTiles, 2)
	_, cut := s.Cols(0) // first column owned by shard 1
	if cut <= 0 || cut >= g.SchedTiles {
		t.Fatalf("degenerate cut %d", cut)
	}
	// The corner task of shard 0: topmost row, last owned column.
	seed, ok := g.TaskID(0, cut-1)
	if !ok {
		t.Fatalf("no task at (0,%d)", cut-1)
	}
	cone := g.Cone([]int{seed})

	// Oracle: BFS over Succs from the seed.
	want := map[int]bool{seed: true}
	frontier := []int{seed}
	for len(frontier) > 0 {
		id := frontier[0]
		frontier = frontier[1:]
		for _, succ := range g.Tasks[id].Succs {
			if !want[succ] {
				want[succ] = true
				frontier = append(frontier, succ)
			}
		}
	}
	seen := make(map[int]int)
	remote := 0
	for _, id := range cone {
		seen[id]++
		if seen[id] > 1 {
			t.Fatalf("cone lists task %d more than once", id)
		}
		if !want[id] {
			t.Fatalf("cone includes task %d (block %d,%d), not a transitive successor",
				id, g.Tasks[id].Bi, g.Tasks[id].Bj)
		}
		if s.Of(g.Tasks[id].Bj) != 0 {
			remote++
		}
	}
	if len(cone) != len(want) {
		t.Fatalf("cone has %d tasks, closure has %d", len(cone), len(want))
	}
	if remote == 0 {
		t.Fatal("cone of a shard-corner task never crossed the cut")
	}
	// Every remote consumer in the next shard's first column appears
	// exactly once: count expected corner-rectangle members there.
	wantRemote := 0
	for _, task := range g.Tasks {
		if want[task.ID] && s.Of(task.Bj) != 0 {
			wantRemote++
		}
	}
	if remote != wantRemote {
		t.Fatalf("cone crossed the cut %d times, closure says %d", remote, wantRemote)
	}
}

// TestClusterPagedMatchesSerial runs the coordinator with its
// authoritative table paged out to a spill file under a memory budget
// well below the table footprint, kills a worker mid-wavefront, and
// proves the solve still converges bit-identically with real spill
// traffic (blocks written to and re-fetched from disk).
func TestClusterPagedMatchesSerial(t *testing.T) {
	ref := serialRef(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tbl := testTable(t)
	var stats Stats
	var once sync.Once
	var killVictim context.CancelFunc
	opts := testOptions(&stats)
	opts.Shards = 2
	opts.Logf = t.Logf
	opts.SpillPath = filepath.Join(t.TempDir(), "cluster.npsp")
	// 8 resident frames for 36 memory blocks: most of the table lives
	// on disk for most of the solve.
	opts.MemoryBudget = 8 * (int64(testTile)*int64(testTile)*4 + 4)
	opts.OnTaskDone = func(completed int, _ sched.Task) {
		if completed == 8 {
			once.Do(func() { go killVictim() })
		}
	}
	addr, wait := startCoordinator(ctx, t, tbl, opts)
	var wg sync.WaitGroup
	killVictim = startWorker(ctx, t, &wg, addr, WorkerOptions{Name: "victim"})
	for w := 0; w < 2; w++ {
		startWorker(ctx, t, &wg, addr, WorkerOptions{Name: "survivor"})
	}
	if err := wait(); err != nil {
		t.Fatalf("Coordinate (paged): %v", err)
	}
	cancel()
	wg.Wait()
	requireIdentical(t, ref, tbl)
	if stats.WorkerDeaths < 1 {
		t.Fatalf("kill was never observed: deaths=%d", stats.WorkerDeaths)
	}
	if stats.PagerStats == nil {
		t.Fatal("paged run exported no pager stats")
	}
	if stats.PagerStats.SpilledBlocks == 0 || stats.PagerStats.FetchedBlocks == 0 {
		t.Errorf("budget below footprint but no spill traffic: %+v", *stats.PagerStats)
	}
	t.Logf("paged cluster: spilled=%d fetched=%d resident_peak=%d",
		stats.PagerStats.SpilledBlocks, stats.PagerStats.FetchedBlocks, stats.PagerStats.ResidentPeak)
}

// TestClusterPagedRejectsBadCombos pins the paged-mode option fences.
func TestClusterPagedRejectsBadCombos(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, tc := range []struct {
		name string
		mut  func(*Options)
		want string
	}{
		{"spill+checkpoint", func(o *Options) { o.SpillPath = "x.npsp"; o.CheckpointPath = "x.npck" }, "incompatible"},
		{"budget-without-spill", func(o *Options) { o.MemoryBudget = 1 << 20 }, "requires SpillPath"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			opts := testOptions(nil)
			tc.mut(&opts)
			err = Coordinate(ctx, ln, testTable(t), opts)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}
