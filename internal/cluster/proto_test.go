package cluster

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"cellnpdp/internal/resilience"
)

// TestFrameRoundTrip pins the frame codec: what writeFrame emits,
// readFrame returns, and any flipped byte is rejected by the checksum.
func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("the quick brown fox")
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameDispatch, payload); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	typ, got, err := readFrame(bytes.NewReader(wire))
	if err != nil || typ != frameDispatch || !bytes.Equal(got, payload) {
		t.Fatalf("round trip = (%d, %q, %v)", typ, got, err)
	}
	for i := range wire {
		bad := append([]byte(nil), wire...)
		bad[i] ^= 0x40
		if _, _, err := readFrame(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}
	// Truncations at every boundary must error, never hang or panic.
	for cut := 0; cut < len(wire); cut++ {
		if _, _, err := readFrame(bytes.NewReader(wire[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestMessageRoundTrips covers every message codec.
func TestMessageRoundTrips(t *testing.T) {
	h, err := decodeHello(helloMsg{Name: "w3"}.encode())
	if err != nil || h.Name != "w3" {
		t.Fatalf("hello round trip = (%+v, %v)", h, err)
	}
	w := welcomeMsg{ElemBytes: 4, N: 1024, Tile: 88, SchedSide: 2, Shards: 4, Slot: 3,
		Stage1: 2, HeartbeatMS: 500, DeadlineMS: 5000}
	got, err := decodeWelcome(w.encode())
	if err != nil || got != w {
		t.Fatalf("welcome round trip = (%+v, %v), want %+v", got, err, w)
	}
	msg := taskMsg{Gen: 7, TaskID: 42, Blocks: []wireBlock{
		{Bi: 1, Bj: 3, CRC: 0xdeadbeef, Raw: []byte{1, 2, 3, 4}},
		{Bi: 2, Bj: 2, CRC: 0x01020304, Raw: []byte{}},
	}}
	back, err := decodeTaskMsg(msg.encode())
	if err != nil || back.Gen != 7 || back.TaskID != 42 || len(back.Blocks) != 2 {
		t.Fatalf("task round trip = (%+v, %v)", back, err)
	}
	for i := range msg.Blocks {
		if back.Blocks[i].Bi != msg.Blocks[i].Bi || back.Blocks[i].CRC != msg.Blocks[i].CRC ||
			!bytes.Equal(back.Blocks[i].Raw, msg.Blocks[i].Raw) {
			t.Fatalf("block %d corrupted in round trip: %+v", i, back.Blocks[i])
		}
	}
	f, err := decodeFail(failMsg{Reason: "boom"}.encode())
	if err != nil || f.Reason != "boom" {
		t.Fatalf("fail round trip = (%+v, %v)", f, err)
	}
	// Trailing garbage after a valid task message must be rejected.
	if _, err := decodeTaskMsg(append(msg.encode(), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestDecodeTaskMsgBoundsBlockCount pins the allocation guard: a
// CRC-valid frame claiming ~2^32 blocks over a tiny payload must be
// rejected by arithmetic, not by attempting a multi-hundred-GB slice
// allocation (the frame cap bounds payload bytes, not the count field).
func TestDecodeTaskMsgBoundsBlockCount(t *testing.T) {
	for _, nblocks := range []uint32{1, 1 << 20, ^uint32(0)} {
		p := make([]byte, 12)
		binary.LittleEndian.PutUint32(p[8:], nblocks)
		if _, err := decodeTaskMsg(p); err == nil {
			t.Fatalf("claimed %d blocks over an empty payload, accepted", nblocks)
		}
	}
	// The bound must not reject genuine payloads: headers only, zero-byte
	// cells, at the exact capacity the arithmetic allows.
	legit := taskMsg{Gen: 1, TaskID: 2, Blocks: make([]wireBlock, 9)}
	for i := range legit.Blocks {
		legit.Blocks[i] = wireBlock{Bi: i, Bj: i, Raw: []byte{}}
	}
	if _, err := decodeTaskMsg(legit.encode()); err != nil {
		t.Fatalf("exact-capacity message rejected: %v", err)
	}
}

// TestWireCRCEqualsBlockSeal pins the load-bearing identity: the CRC32C
// of the wire cell bytes equals resilience.BlockCRC of the decoded
// cells, for both element widths. One digest is both transport check
// and block seal.
func TestWireCRCEqualsBlockSeal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f32 := make([]float32, 64)
	f64 := make([]float64, 64)
	for i := range f32 {
		f32[i] = rng.Float32() * 1e6
		f64[i] = rng.Float64() * 1e6
	}
	if got, want := rawCRC(encodeCells(f32)), resilience.BlockCRC(f32); got != want {
		t.Fatalf("float32: rawCRC %08x != BlockCRC %08x", got, want)
	}
	if got, want := rawCRC(encodeCells(f64)), resilience.BlockCRC(f64); got != want {
		t.Fatalf("float64: rawCRC %08x != BlockCRC %08x", got, want)
	}
	dst := make([]float32, 64)
	if err := decodeCells(dst, encodeCells(f32)); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != f32[i] {
			t.Fatalf("cell %d decoded %v, want %v", i, dst[i], f32[i])
		}
	}
	if err := decodeCells(dst, encodeCells(f32)[:7]); err == nil {
		t.Fatal("short cell stream accepted")
	}
}
