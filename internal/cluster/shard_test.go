package cluster

import "testing"

// TestShardingPartition pins the sharding invariants: every column owned
// by exactly one shard, shards contiguous and non-empty, Of consistent
// with Cols, and the triangular task counts balanced far better than an
// even column split would manage.
func TestShardingPartition(t *testing.T) {
	for _, tc := range []struct{ cols, k int }{
		{1, 1}, {8, 1}, {8, 2}, {8, 3}, {8, 4}, {16, 3}, {64, 4}, {64, 8}, {5, 5},
	} {
		s := NewSharding(tc.cols, tc.k)
		if s.NumShards() != tc.k {
			t.Fatalf("cols=%d k=%d: got %d shards", tc.cols, tc.k, s.NumShards())
		}
		total := 0
		for sh := 0; sh < s.NumShards(); sh++ {
			lo, hi := s.Cols(sh)
			if hi <= lo {
				t.Fatalf("cols=%d k=%d: shard %d empty [%d,%d)", tc.cols, tc.k, sh, lo, hi)
			}
			for c := lo; c < hi; c++ {
				if s.Of(c) != sh {
					t.Fatalf("cols=%d k=%d: Of(%d)=%d, want %d", tc.cols, tc.k, c, s.Of(c), sh)
				}
			}
			total += s.TaskCount(sh)
		}
		if want := tc.cols * (tc.cols + 1) / 2; total != want {
			t.Fatalf("cols=%d k=%d: task counts sum to %d, want %d", tc.cols, tc.k, total, want)
		}
		// Balance: no shard may exceed twice the ideal share plus the
		// largest single column (the indivisible unit).
		ideal := float64(tc.cols*(tc.cols+1)/2) / float64(tc.k)
		for sh := 0; sh < s.NumShards(); sh++ {
			if float64(s.TaskCount(sh)) > 2*ideal+float64(tc.cols) {
				t.Fatalf("cols=%d k=%d: shard %d holds %d tasks (ideal %.1f)", tc.cols, tc.k, sh, s.TaskCount(sh), ideal)
			}
		}
	}
	// More shards than columns clamps rather than creating empty shards.
	if s := NewSharding(3, 10); s.NumShards() != 3 {
		t.Fatalf("over-sharding: got %d shards, want 3", s.NumShards())
	}
	if s := NewSharding(4, 0); s.NumShards() != 1 {
		t.Fatalf("zero shards: got %d, want 1", s.NumShards())
	}
}
