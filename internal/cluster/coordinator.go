package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"cellnpdp/internal/kernel"
	"cellnpdp/internal/npdp"
	"cellnpdp/internal/pager"
	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tableio"
	"cellnpdp/internal/tri"
)

// The coordinator is the PPE of the distributed solve: it owns the
// authoritative table, the dependence graph, the seal table, and a
// pristine snapshot (the in-memory level-0 checkpoint — same rationale
// as the single-process healer: the on-disk NPCK snapshot may already
// hold corrupted bytes, the pristine clone cannot). Workers hold no
// authoritative state at all; everything a worker computes only becomes
// real when its result blocks pass the seal audit at install time.
//
// Failure model and recovery, one rung past the single-process ladder:
//
//	worker death      → re-dispatch its in-flight tasks to survivors
//	                    under bumped per-task generations, so a zombie's
//	                    late result is recognizably stale (no recompute
//	                    of installed state — installed blocks are
//	                    seal-verified and never leave the coordinator)
//	seal mismatch     → typed *resilience.ErrSealMismatch; with healing
//	                    on, restore the poisoned cone (sched.Graph.Cone)
//	                    from the pristine snapshot, bump the cone tasks'
//	                    generations so stale results can never install,
//	                    and re-dispatch only the cone
//	heal exhaustion   → one pristine restart of the whole solve
//	still corrupt     → typed *resilience.CorruptionError
//	all workers gone  → wait WorkerlessAfter for reconnects, then a loud
//	                    typed error (never a hang)

// Defaults for Options zero values.
const (
	DefaultMaxInflight     = 2
	DefaultHeartbeatEvery  = 500 * time.Millisecond
	DefaultDeadlineAfter   = 5 * time.Second
	DefaultWorkerlessAfter = 60 * time.Second
)

// ErrNoWorkers reports that every worker stayed dead past
// Options.WorkerlessAfter with tasks still outstanding.
var ErrNoWorkers = errors.New("cluster: no live workers")

// Options configures a coordinator run.
type Options struct {
	// Shards is the number of contiguous column shards the scheduling
	// grid is partitioned into — normally the expected worker count.
	// Defaults to 1; clamped to the scheduling-column count.
	Shards int
	// SchedSide is the scheduling-block side g in memory blocks
	// (ParallelOptions.SchedSide); 0 means 1.
	SchedSide int
	// Stage1 pins the stage-1 kernel for the whole cluster; KernelAuto
	// consults the Section V calibration once, coordinator-side, and the
	// choice travels in the welcome so every worker computes with the
	// same kernel — a requirement for cluster-wide bit-identity.
	Stage1 perfmodel.Kernel
	// MaxInflight is the per-worker dispatch pipeline depth; 0 means
	// DefaultMaxInflight.
	MaxInflight int
	// HeartbeatEvery is the ping period (both directions); 0 means
	// DefaultHeartbeatEvery.
	HeartbeatEvery time.Duration
	// DeadlineAfter declares a silent worker dead; 0 means
	// DefaultDeadlineAfter. It must exceed the worst-case single-task
	// compute time, since a worker deep in stage 1 does not ping.
	DeadlineAfter time.Duration
	// WorkerlessAfter bounds how long the solve waits with zero live
	// workers before failing with ErrNoWorkers; 0 means
	// DefaultWorkerlessAfter.
	WorkerlessAfter time.Duration
	// Heal enables the poisoned-cone recovery path for seal mismatches.
	// Disabled, the first mismatch aborts with *resilience.ErrSealMismatch.
	Heal bool
	// HealAttempts bounds how many times any single block may fail its
	// seal and be cone-healed (per restart epoch) before the
	// pristine-restart rung; 0 means npdp.DefaultHealAttempts. The
	// budget is per block, not global: fresh corruption on previously
	// clean blocks never exhausts it, only a block that keeps failing
	// after recompute does.
	HealAttempts int
	// CheckpointPath, when set, receives periodic NPCK snapshots (and a
	// final one) via the multi-process-safe SaveCheckpointFile.
	CheckpointPath string
	// CheckpointEvery writes a snapshot every this many accepted tasks
	// (0 disables periodic snapshots; the final one still writes).
	CheckpointEvery int
	// Resume pre-completes tasks from CheckpointPath when a valid
	// snapshot with matching geometry exists.
	Resume bool
	// Stats, when non-nil, receives the run's counters at exit.
	Stats *Stats
	// OnTaskDone, when non-nil, is called from the event loop after each
	// accepted task with the cumulative accept count — the hook chaos
	// schedules key worker kills on. It must not block.
	OnTaskDone func(completed int, task sched.Task)
	// Logf, when non-nil, receives progress and failure-path logging.
	Logf func(format string, args ...any)
	// Epoch is the leadership epoch this coordinator runs at; 0 means 1
	// (a fresh primary). A standby taking over passes the deposed
	// leader's epoch + 1, which is what fences the old leader's writes
	// everywhere (see epoch.go).
	Epoch uint32
	// ReplicaAddr, when set, streams the completion log to a warm
	// standby at that address (see RunStandby); the replication link is
	// best-effort and never blocks or fails the solve.
	ReplicaAddr string
	// ReplicaDial overrides the replication connection factory (tests
	// inject proxies); nil means a plain TCP dial of ReplicaAddr.
	ReplicaDial func(ctx context.Context) (net.Conn, error)
	// Die, when non-nil, kills the event loop the instant it is
	// closed: run returns ErrDied with no fail broadcast, no final
	// checkpoint, and no replication farewell — the in-process analogue
	// of SIGKILL for failover tests and the harness.
	Die <-chan struct{}
	// SpillPath, when set, backs the coordinator's authoritative table
	// with the crash-consistent block pager instead of a full in-memory
	// copy plus pristine clone: installed boundary blocks are sealed into
	// a CRC-verified spill file, heals demote to the on-disk pristine
	// region, and only a MemoryBudget-sized working set stays resident.
	// Incompatible with CheckpointPath — the committed spill index is the
	// checkpoint.
	SpillPath string
	// MemoryBudget caps the pager's resident working set in bytes; 0
	// leaves only the pager's minimum. Requires SpillPath.
	MemoryBudget int64
}

// Stats counts a coordinator run's work.
type Stats struct {
	// Tasks is the graph's task count; Resumed of them were
	// pre-completed from the checkpoint.
	Tasks   int
	Resumed int
	// PeakWorkers is the maximum concurrently-live worker count.
	PeakWorkers int
	// Dispatched counts dispatch frames sent; Accepted counts results
	// installed; StaleResults counts results dropped for a generation
	// mismatch (a healed or restarted task's old answer — not an error).
	Dispatched   int
	Accepted     int
	StaleResults int
	// SealMismatches counts boundary blocks whose bytes failed the
	// CRC32C seal audit at install time.
	SealMismatches int
	// WorkerDeaths counts declared deaths (EOF, read error, heartbeat
	// deadline); Redispatched counts in-flight tasks requeued by them.
	WorkerDeaths int
	Redispatched int
	// HealRounds / RecomputedTasks / PristineRestarts mirror the
	// single-process HealStats at cluster granularity.
	HealRounds       int
	RecomputedTasks  int
	PristineRestarts int
	// Checkpoints / CheckpointErrors count NPCK snapshot writes.
	Checkpoints      int
	CheckpointErrors int
	// BlocksStreamed / BytesStreamed count operand + pristine blocks
	// sent to workers (the cluster's "DMA traffic").
	BlocksStreamed int
	BytesStreamed  int64
	// Epoch is the leadership epoch the run executed at (1 for a fresh
	// primary, deposed+1 after a takeover).
	Epoch uint32
	// FencedWrites counts frames rejected for carrying a stale epoch —
	// results from a pre-failover dispatch, and replication or worker
	// hellos from a deposed leader's cluster. Every one is a write the
	// epoch fence stopped from landing.
	FencedWrites int
	// Failovers is 1 when this run is a standby resuming a dead
	// primary's wavefront, 0 for a fresh primary.
	Failovers int
	// ReplRecords / ReplResyncs count completion-log records queued for
	// the standby and full-state resyncs (stream (re)connects and
	// overflow recoveries).
	ReplRecords int
	ReplResyncs int
	// PagerStats carries the spill pager's disk-traffic and recovery
	// counters when the run used a paged authoritative table (SpillPath
	// set); nil otherwise.
	PagerStats *pager.Stats
}

// Health renders the counters in the shape serve.Config.ClusterHealth
// expects, keyed to match the /healthz "cluster" object. It reads a
// snapshot, so call it on a Stats copy taken after the run (or on one
// the caller synchronizes itself).
func (s *Stats) Health() map[string]any {
	return map[string]any{
		"tasks":           s.Tasks,
		"accepted":        s.Accepted,
		"dispatched":      s.Dispatched,
		"worker_deaths":   s.WorkerDeaths,
		"redispatched":    s.Redispatched,
		"stale_results":   s.StaleResults,
		"seal_mismatches": s.SealMismatches,
		"heal_rounds":     s.HealRounds,
		"epoch":           s.Epoch,
		"fenced_writes":   s.FencedWrites,
		"failovers":       s.Failovers,
		"repl_records":    s.ReplRecords,
		"repl_resyncs":    s.ReplResyncs,
	}
}

// Task lifecycle states.
const (
	tsNotReady = iota
	tsQueued
	tsInflight
	tsDone
)

// session is one live worker connection. All fields except out are
// owned by the event loop; the per-session reader goroutine only
// touches the conn's read half and posts events, and the per-session
// writer goroutine only drains out onto the conn's write half.
type session[E semiring.Elem] struct {
	id      int
	name    string
	conn    net.Conn
	shard   int
	possess []bool // dense memory-block ID → worker holds the final bytes
	// out is the bounded outbound frame queue feeding this session's
	// writer goroutine; only the event loop sends, and declareDead (also
	// on the event loop) closes it after marking the session dead.
	out chan outFrame
	// inflight is the number of dispatches outstanding on this worker.
	inflight int
	lastSeen time.Time
	dead     bool
}

// outFrame is one queued outbound frame.
type outFrame struct {
	typ     byte
	payload []byte
}

// outboundQueueCap sizes a session's outbound queue: room for the
// welcome, a generous multiple of the dispatch pipeline depth (heal
// rounds can release and re-dispatch slots while the writer is mid
// large frame), and the done/fail release. A full queue means the
// writer has been stalled on a frame while the event loop kept
// producing — the session is declared dead rather than ever blocking
// the loop.
func outboundQueueCap(maxInflight int) int { return 4*maxInflight + 16 }

type evKind int

const (
	evConn evKind = iota
	evResult
	evPing
	evFail
	evDead
	evReplConn // a replication hello arrived on the worker listener
	evFenced   // the standby (now leader) fenced our replication stream
)

type event[E semiring.Elem] struct {
	kind  evKind
	conn  net.Conn
	hello helloMsg
	repl  replHelloMsg
	sess  *session[E]
	msg   taskMsg
	text  string
	err   error
}

// replPull is the replicator goroutine asking the event loop for the
// next batch of completion-log records. full forces a snapshot resync
// (every stream (re)connect opens with one).
type replPull struct {
	full  bool
	reply chan []resilience.Delta // cap 1; the loop replies synchronously
}

// maxReplPending bounds the queued completion log while the replication
// stream is slow or down; overflow drops the queue and schedules a full
// resync instead of growing without bound.
const maxReplPending = 4096

// replFinal is the disposition the replicator delivers to the standby
// at shutdown. It is written before close(co.stop) — the close is the
// release barrier the replicator reads it after.
type replFinal struct {
	typ    byte // frameDone, frameFail, or 0 for silent death
	reason string
}

type coordinator[E semiring.Elem] struct {
	opts Options
	t    *tri.Tiled[E]
	// pristine is the in-memory level-0 snapshot; nil in paged mode,
	// where the spill file's pristine region plays its role.
	pristine *tri.Tiled[E]
	// pager, when non-nil, is the authoritative table: every block read,
	// install, and pristine restore goes through it, and co.t is only the
	// input source and the final materialization target.
	pager *pager.Pager[E]
	// pageErr records the first spill page-in failure hit inside a path
	// that cannot return an error (dispatch); the event loop surfaces it
	// after the current event, healing if it can.
	pageErr error
	g       *sched.Graph
	seals   *resilience.SealTable
	shards  Sharding
	stage1  perfmodel.Kernel

	epoch uint32

	state     []int
	gen       []uint32
	inflight  map[int]*session[E]
	queues    [][]int
	sessions  map[*session[E]]struct{}
	events    chan event[E]
	stop      chan struct{}
	writers   sync.WaitGroup
	nextSess  int
	done      int
	sinceCkpt int

	// Replication state. replPullC is nil when no standby is
	// configured; replPending/replFullSync are event-loop-owned;
	// replFinal is written once before close(co.stop).
	replPullC    chan replPull
	replPending  []resilience.Delta
	replFullSync bool
	replFinal    replFinal

	healRounds       int
	healCounts       map[int]int // heals per block ID this restart epoch
	pristineRestarts int
	noWorkerSince    time.Time

	stats Stats
}

// Coordinate runs the coordinator side of a distributed solve over the
// table t, accepting workers on ln until every task is installed and
// seal-audited. The table is solved in place; on success it is
// bit-identical to SolveSerial on the same input (same kernels, same
// dependence-ordered block computation — the schedule cannot change the
// values). The listener is closed before returning.
func Coordinate[E semiring.Elem](ctx context.Context, ln net.Listener, t *tri.Tiled[E], opts Options) error {
	return coordinate(ctx, ln, t, opts, nil)
}

// coordinate is the shared coordinator body. pre, when non-nil, is a
// replicated checkpoint a standby resumes from after taking over.
func coordinate[E semiring.Elem](ctx context.Context, ln net.Listener, t *tri.Tiled[E], opts Options, pre *resilience.Checkpoint[E]) error {
	defer ln.Close()
	if opts.SchedSide == 0 {
		opts.SchedSide = 1
	}
	if opts.SchedSide < 0 {
		return fmt.Errorf("cluster: scheduling-block side must be positive, got %d", opts.SchedSide)
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = DefaultMaxInflight
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if opts.DeadlineAfter <= 0 {
		opts.DeadlineAfter = DefaultDeadlineAfter
	}
	if opts.WorkerlessAfter <= 0 {
		opts.WorkerlessAfter = DefaultWorkerlessAfter
	}
	if opts.HealAttempts <= 0 {
		opts.HealAttempts = npdp.DefaultHealAttempts
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}

	g, err := sched.NewGraph(t.Blocks(), opts.SchedSide)
	if err != nil {
		return err
	}
	sel := opts.Stage1
	var e E
	if sel == perfmodel.KernelAuto {
		_, isF32 := any(e).(float32)
		sel = perfmodel.PickKernel(perfmodel.Shape{Block: t.Tile(), N: t.Len(), Float32: isF32},
			runtime.GOARCH, kernel.VectorISA())
	}
	// Resolving validates the pin (and rejects the lattice kernel) with
	// the exact rules workers will apply.
	if _, err := npdp.ResolveStage1(sel, t); err != nil {
		return err
	}

	if opts.Epoch == 0 {
		opts.Epoch = 1
	}
	if opts.SpillPath != "" && opts.CheckpointPath != "" {
		return fmt.Errorf("cluster: SpillPath is incompatible with CheckpointPath — the committed spill index is the checkpoint")
	}
	if opts.MemoryBudget != 0 && opts.SpillPath == "" {
		return fmt.Errorf("cluster: MemoryBudget requires SpillPath")
	}

	m := t.Blocks()
	co := &coordinator[E]{
		opts:       opts,
		t:          t,
		g:          g,
		seals:      resilience.NewSealTable(m * (m + 1) / 2),
		shards:     NewSharding(g.SchedTiles, opts.Shards),
		stage1:     sel,
		epoch:      opts.Epoch,
		state:      make([]int, len(g.Tasks)),
		gen:        make([]uint32, len(g.Tasks)),
		inflight:   make(map[int]*session[E]),
		sessions:   make(map[*session[E]]struct{}),
		healCounts: make(map[int]int),
		events:     make(chan event[E], 256),
		stop:       make(chan struct{}),
	}
	co.queues = make([][]int, co.shards.NumShards())
	co.stats.Tasks = len(g.Tasks)
	co.stats.Epoch = co.epoch

	if opts.SpillPath != "" {
		elem := tableio.ElemWidth(e)
		frameBytes := int64(t.Tile())*int64(t.Tile())*int64(elem) + 4
		frames := int(opts.MemoryBudget / frameBytes)
		p, err := pager.Create(opts.SpillPath, t, pager.Options{Frames: frames, Logf: opts.Logf})
		if err != nil {
			return fmt.Errorf("cluster: creating spill pager: %w", err)
		}
		co.pager = p
		defer co.pager.Close()
	}

	if pre != nil {
		if err := co.applyCheckpoint(pre); err != nil {
			return err
		}
		co.stats.Failovers = 1
	} else if err := co.resume(); err != nil {
		return err
	}
	// The pristine snapshot is taken after resume, so checkpoint-restored
	// blocks count as known-good state (their tasks stay done across a
	// heal; min-plus relaxation is idempotent, so even a restored-final
	// block recomputes bit-identically). In paged mode the spill file's
	// pristine region already holds it — no in-memory clone, which is the
	// paged coordinator's memory win.
	if co.pager == nil {
		co.pristine = t.Clone()
	}
	for _, task := range g.Tasks {
		if co.state[task.ID] != tsDone && co.depsDone(task.ID) {
			co.enqueue(task.ID)
		}
	}

	go co.acceptLoop(ln)
	if opts.ReplicaAddr != "" || opts.ReplicaDial != nil {
		co.replPullC = make(chan replPull)
		co.writers.Add(1)
		go co.runReplicator(ctx)
	}
	err = co.run(ctx)
	// The replicator reads the disposition after observing the stop
	// close (the write below happens-before it). A silent death sends
	// nothing — the standby's lease must expire, like a real crash.
	switch {
	case err == nil:
		co.replFinal = replFinal{typ: frameDone}
	case errors.Is(err, ErrDied):
		co.replFinal = replFinal{}
	default:
		co.replFinal = replFinal{typ: frameFail, reason: err.Error()}
	}
	close(co.stop)
	ln.Close()
	// The event loop has exited, so session state is safe to touch here.
	// Closing the outbound queues lets each writer flush the queued
	// done/fail release frames; the wait is bounded (writes carry
	// deadlines, and the force-close below unblocks any straggler).
	for sess := range co.sessions {
		close(sess.out)
	}
	drained := make(chan struct{})
	go func() {
		co.writers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(opts.DeadlineAfter):
	}
	for sess := range co.sessions {
		sess.conn.Close()
	}
	if err == nil && co.pager != nil {
		// The solve finished against the paged authority; the caller's
		// table gets the materialized result (final page-ins included in
		// the pager's traffic counters).
		if merr := co.pager.Materialize(t); merr != nil {
			err = fmt.Errorf("cluster: materializing solved table from spill: %w", merr)
		}
	}
	if opts.Stats != nil {
		co.stats.HealRounds = co.healRounds
		co.stats.PristineRestarts = co.pristineRestarts
		if co.pager != nil {
			ps := co.pager.Stats()
			co.stats.PagerStats = &ps
		}
		*opts.Stats = co.stats
	}
	return err
}

// run is the single-goroutine event loop; every piece of solve state is
// confined to it.
func (co *coordinator[E]) run(ctx context.Context) error {
	ticker := time.NewTicker(co.opts.HeartbeatEvery)
	defer ticker.Stop()
	if done, err := co.maybeFinish(); done || err != nil {
		return err // a resume can already be complete
	}
	for {
		select {
		case <-co.opts.Die:
			// Chaos kill: no broadcast, no checkpoint, no farewell. The
			// cluster must discover the death the hard way.
			return ErrDied
		case <-ctx.Done():
			co.broadcastFail("coordinator context canceled")
			return ctx.Err()
		case pr := <-co.replPullC:
			co.replReply(pr)
		case now := <-ticker.C:
			if err := co.tick(now); err != nil {
				co.broadcastAbort(err)
				return err
			}
		case ev := <-co.events:
			finished, err := co.handle(ev)
			if err != nil {
				co.broadcastAbort(err)
				return err
			}
			if finished {
				return nil
			}
		}
		// Spill page-in failures from paths that cannot return errors
		// (dispatch, install, audit) surface here, once per event.
		if err := co.checkPageErr(); err != nil {
			co.broadcastAbort(err)
			return err
		}
	}
}

// replReply answers one replicator pull on the event loop: a full
// resync snapshot when requested (or when overflow forced one),
// otherwise the pending records accumulated since the last pull.
func (co *coordinator[E]) replReply(pr replPull) {
	if pr.full || co.replFullSync {
		co.replFullSync = false
		co.replPending = nil
		co.stats.ReplResyncs++
		pr.reply <- co.snapshotDeltas()
		return
	}
	batch := co.replPending
	co.replPending = nil
	pr.reply <- batch
}

// snapshotDeltas renders the full completion log as of now: a sync
// marker, then one done record per completed task with its installed
// blocks re-encoded from the authoritative table.
func (co *coordinator[E]) snapshotDeltas() []resilience.Delta {
	out := []resilience.Delta{{Kind: resilience.DeltaSyncBegin, Epoch: co.epoch}}
	for _, task := range co.g.Tasks {
		if co.state[task.ID] != tsDone {
			continue
		}
		d := resilience.Delta{Kind: resilience.DeltaTaskDone, Epoch: co.epoch, TaskID: task.ID, Gen: co.gen[task.ID]}
		readable := true
		for _, mb := range task.MemoryBlockOrder() {
			var raw []byte
			if err := co.blockRead(mb[0], mb[1], func(cells []E) { raw = encodeCells(cells) }); err != nil {
				// Replication is best-effort: omit this task's record and
				// let the standby recompute it after takeover rather than
				// stall the solve on a spill read.
				co.opts.Logf("cluster: snapshot read of block (%d,%d) failed: %v; omitting task %d", mb[0], mb[1], err, task.ID)
				readable = false
				break
			}
			d.Blocks = append(d.Blocks, resilience.DeltaBlock{Bi: mb[0], Bj: mb[1], CRC: rawCRC(raw), Raw: raw})
		}
		if readable {
			out = append(out, d)
		}
	}
	return out
}

// replRecord queues one completion-log record for the standby. A full
// queue (stream down or slow) drops everything and schedules a resync —
// replication is best-effort and never backpressures the solve.
func (co *coordinator[E]) replRecord(d resilience.Delta) {
	if co.replPullC == nil || co.replFullSync {
		return
	}
	if len(co.replPending) >= maxReplPending {
		co.replPending = nil
		co.replFullSync = true
		return
	}
	co.replPending = append(co.replPending, d)
	co.stats.ReplRecords++
}

// handle processes one event; finished=true means every task installed
// and the final audit passed.
func (co *coordinator[E]) handle(ev event[E]) (finished bool, err error) {
	switch ev.kind {
	case evConn:
		return false, co.admit(ev.conn, ev.hello)
	case evReplConn:
		return false, co.handleReplConn(ev.conn, ev.repl)
	case evFenced:
		// The standby we replicate to has become the leader; we are
		// deposed. Terminal — our epoch can never win again.
		return false, &ErrEpochFenced{Epoch: co.epoch, Current: ev.repl.Epoch, Role: "coordinator"}
	case evPing:
		if !ev.sess.dead {
			ev.sess.lastSeen = time.Now()
		}
	case evFail:
		co.opts.Logf("cluster: worker %s failed: %s", ev.sess.name, ev.text)
		co.declareDead(ev.sess, errors.New(ev.text))
	case evDead:
		co.declareDead(ev.sess, ev.err)
	case evResult:
		if ev.sess.dead {
			co.stats.StaleResults++
			return false, nil
		}
		ev.sess.lastSeen = time.Now()
		return co.install(ev.sess, ev.msg)
	}
	return false, nil
}

// tick runs the heartbeat pass: deadline dead workers, ping the rest,
// and bound the zero-worker wait.
func (co *coordinator[E]) tick(now time.Time) error {
	for sess := range co.sessions {
		if now.Sub(sess.lastSeen) > co.opts.DeadlineAfter {
			co.opts.Logf("cluster: worker %s missed heartbeat deadline (%v)", sess.name, co.opts.DeadlineAfter)
			co.declareDead(sess, fmt.Errorf("heartbeat deadline %v exceeded", co.opts.DeadlineAfter))
			continue
		}
		// Any queued frame already proves coordinator liveness to the
		// worker (it refreshes lastSeen on every frame), so pings only
		// go out on an idle queue — they must never crowd it while the
		// writer works through a large dispatch.
		if len(sess.out) == 0 {
			co.send(sess, framePing, nil)
		}
	}
	if len(co.sessions) == 0 && co.done < len(co.g.Tasks) {
		if co.noWorkerSince.IsZero() {
			co.noWorkerSince = now
		} else if now.Sub(co.noWorkerSince) > co.opts.WorkerlessAfter {
			return fmt.Errorf("%w for %v with %d/%d tasks outstanding",
				ErrNoWorkers, co.opts.WorkerlessAfter, len(co.g.Tasks)-co.done, len(co.g.Tasks))
		}
	} else {
		co.noWorkerSince = time.Time{}
	}
	return nil
}

// acceptLoop admits connections: it performs the blocking hello read off
// the event loop, then hands the connection over.
func (co *coordinator[E]) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed at shutdown
		}
		go func(conn net.Conn) {
			conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			typ, payload, err := readFrame(conn)
			if err != nil {
				conn.Close()
				return
			}
			switch typ {
			case frameHello:
				hello, err := decodeHello(payload)
				if err != nil {
					// A version mismatch gets a reasoned rejection — the
					// worker fails fast and loud instead of seeing a bare
					// close (or, pre-typed-errors, a checksum mismatch).
					var vErr *ErrProtocolVersion
					if errors.As(err, &vErr) {
						conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
						writeFrame(conn, frameFail, failMsg{Reason: err.Error()}.encode())
					}
					conn.Close()
					return
				}
				conn.SetReadDeadline(time.Time{})
				co.post(event[E]{kind: evConn, conn: conn, hello: hello})
			case frameReplHello:
				// A deposed primary's replication stream found us (the
				// worker listener and the standby listener are the same
				// port once a standby takes over). The event loop judges
				// its epoch.
				repl, err := decodeReplHello(payload)
				if err != nil {
					conn.Close()
					return
				}
				conn.SetReadDeadline(time.Time{})
				co.post(event[E]{kind: evReplConn, conn: conn, repl: repl})
			default:
				conn.Close()
			}
		}(conn)
	}
}

// post delivers an event unless the coordinator already shut down.
func (co *coordinator[E]) post(ev event[E]) {
	select {
	case co.events <- ev:
	case <-co.stop:
		if ev.conn != nil {
			ev.conn.Close()
		}
	}
}

// admit turns a hello'd connection into a live session on the
// least-loaded shard and starts its reader. A worker that has been
// welcomed at a higher epoch than ours proves we are deposed: the run
// aborts, because any state we install from here on diverges from the
// real leader's.
func (co *coordinator[E]) admit(conn net.Conn, hello helloMsg) error {
	if hello.Epoch > co.epoch {
		co.opts.Logf("cluster: worker %s has seen epoch %d > ours (%d); we are deposed", hello.Name, hello.Epoch, co.epoch)
		go func() {
			conn.SetWriteDeadline(time.Now().Add(co.opts.DeadlineAfter))
			writeFrame(conn, frameStandby, nil)
			conn.Close()
		}()
		return &ErrEpochFenced{Epoch: co.epoch, Current: hello.Epoch, Role: "coordinator"}
	}
	shard, least := 0, -1
	live := make([]int, co.shards.NumShards())
	for sess := range co.sessions {
		live[sess.shard]++
	}
	for s, n := range live {
		if least < 0 || n < least {
			shard, least = s, n
		}
	}
	sess := &session[E]{
		id:       co.nextSess,
		name:     fmt.Sprintf("%s#%d", hello.Name, co.nextSess),
		conn:     conn,
		shard:    shard,
		possess:  make([]bool, co.seals.Len()),
		out:      make(chan outFrame, outboundQueueCap(co.opts.MaxInflight)),
		lastSeen: time.Now(),
	}
	co.nextSess++
	co.writers.Add(1)
	go co.writeLoop(sess)
	var e E
	welcome := welcomeMsg{
		ElemBytes:   tableio.ElemWidth(e),
		N:           co.t.Len(),
		Tile:        co.t.Tile(),
		SchedSide:   co.opts.SchedSide,
		Shards:      co.shards.NumShards(),
		Slot:        shard,
		Stage1:      uint8(co.stage1),
		HeartbeatMS: uint32(co.opts.HeartbeatEvery / time.Millisecond),
		DeadlineMS:  uint32(co.opts.DeadlineAfter / time.Millisecond),
		Epoch:       co.epoch,
	}
	co.sessions[sess] = struct{}{}
	if len(co.sessions) > co.stats.PeakWorkers {
		co.stats.PeakWorkers = len(co.sessions)
	}
	co.opts.Logf("cluster: worker %s joined (shard %d of %d)", sess.name, shard, co.shards.NumShards())
	if !co.send(sess, frameWelcome, welcome.encode()) {
		return nil
	}
	go co.readLoop(sess)
	co.fill(sess)
	return nil
}

// handleReplConn judges a replication hello that arrived on the worker
// listener: a stale pusher (a deposed primary that has not yet noticed)
// is fenced, a pusher from the future means we are the deposed one.
func (co *coordinator[E]) handleReplConn(conn net.Conn, repl replHelloMsg) error {
	if repl.Epoch > co.epoch {
		conn.Close()
		return &ErrEpochFenced{Epoch: co.epoch, Current: repl.Epoch, Role: "coordinator"}
	}
	co.stats.FencedWrites++
	co.opts.Logf("cluster: fenced replication stream %q at stale epoch %d (current %d)", repl.Name, repl.Epoch, co.epoch)
	go func() {
		conn.SetWriteDeadline(time.Now().Add(co.opts.DeadlineAfter))
		writeFrame(conn, frameFenced, encodeEpoch(co.epoch))
		conn.Close()
	}()
	return nil
}

// readLoop decodes a session's frames and posts them to the event loop.
func (co *coordinator[E]) readLoop(sess *session[E]) {
	for {
		// The read deadline is a backstop only; liveness is judged by the
		// event loop against lastSeen.
		sess.conn.SetReadDeadline(time.Now().Add(2 * co.opts.DeadlineAfter))
		typ, payload, err := readFrame(sess.conn)
		if err != nil {
			co.post(event[E]{kind: evDead, sess: sess, err: err})
			return
		}
		switch typ {
		case frameResult:
			msg, err := decodeTaskMsg(payload)
			if err != nil {
				co.post(event[E]{kind: evDead, sess: sess, err: err})
				return
			}
			co.post(event[E]{kind: evResult, sess: sess, msg: msg})
		case framePing:
			co.post(event[E]{kind: evPing, sess: sess})
		case frameFail:
			f, _ := decodeFail(payload)
			co.post(event[E]{kind: evFail, sess: sess, text: f.Reason})
			return
		default:
			co.post(event[E]{kind: evDead, sess: sess, err: fmt.Errorf("unexpected frame type %d", typ)})
			return
		}
	}
}

// send enqueues one frame on the session's writer goroutine without
// ever blocking the event loop; a full queue means the writer has
// stalled past what the pipeline can legitimately produce, and the
// session is declared dead. Returns whether the frame was queued.
func (co *coordinator[E]) send(sess *session[E], typ byte, payload []byte) bool {
	if sess.dead {
		return false
	}
	select {
	case sess.out <- outFrame{typ: typ, payload: payload}:
		return true
	default:
		co.declareDead(sess, fmt.Errorf("outbound queue full (%d frames): writer stalled", cap(sess.out)))
		return false
	}
}

// writeLoop is a session's writer goroutine: it drains the outbound
// queue onto the conn, each frame under a write deadline, so a slow or
// partitioned worker can never stall the event loop — dispatch frames
// run to many MB, and a synchronous write would block heartbeats and
// dispatch to every other worker for up to the deadline per frame. A
// write error posts the death and abandons the rest of the queue; a
// closed queue (declareDead or shutdown) drains what was accepted,
// then exits.
func (co *coordinator[E]) writeLoop(sess *session[E]) {
	defer co.writers.Done()
	for f := range sess.out {
		sess.conn.SetWriteDeadline(time.Now().Add(co.opts.DeadlineAfter))
		if err := writeFrame(sess.conn, f.typ, f.payload); err != nil {
			co.post(event[E]{kind: evDead, sess: sess, err: fmt.Errorf("write: %w", err)})
			return
		}
	}
}

// declareDead removes a session and requeues its in-flight tasks at the
// front of their shard queues under bumped generations — the
// death-recovery rung of the ladder. The bump makes any result the dead
// worker already produced recognizably stale on its own (defense in
// depth beyond the closed conn and the dead-session drop in handle).
func (co *coordinator[E]) declareDead(sess *session[E], cause error) {
	if sess.dead {
		return
	}
	sess.dead = true
	delete(co.sessions, sess)
	sess.conn.Close() // a zombie's late frames can never arrive
	close(sess.out)   // the writer drains what was queued, then exits
	co.stats.WorkerDeaths++
	var requeued []int
	for id, s := range co.inflight {
		if s == sess {
			requeued = append(requeued, id)
		}
	}
	sort.Ints(requeued)
	for _, id := range requeued {
		delete(co.inflight, id)
		co.state[id] = tsQueued
		co.gen[id]++
		q := co.taskShard(id)
		co.queues[q] = append([]int{id}, co.queues[q]...)
	}
	co.stats.Redispatched += len(requeued)
	co.opts.Logf("cluster: worker %s dead (%v); requeued %d in-flight tasks", sess.name, cause, len(requeued))
	co.fillAll()
}

// blockRead pins memory block (bi, bj) and calls fn with its current
// authoritative cells — a resident/in-memory read or a CRC-verified
// page-in. The cells are only valid inside fn.
func (co *coordinator[E]) blockRead(bi, bj int, fn func(cells []E)) error {
	if co.pager == nil {
		fn(co.t.Block(bi, bj))
		return nil
	}
	cells, err := co.pager.Acquire(bi, bj)
	if err != nil {
		return err
	}
	fn(cells)
	co.pager.Release(bi, bj)
	return nil
}

// blockInstall overwrites memory block (bi, bj) with a worker's audited
// result bytes and, in paged mode, seals it final (CRC32C, spill-once).
func (co *coordinator[E]) blockInstall(bi, bj int, raw []byte) error {
	if co.pager == nil {
		return decodeCells(co.t.Block(bi, bj), raw)
	}
	cells, err := co.pager.Acquire(bi, bj)
	if err != nil {
		return err
	}
	defer co.pager.Release(bi, bj)
	if err := decodeCells(cells, raw); err != nil {
		return err
	}
	return co.pager.Complete(bi, bj)
}

// blockRestore reverts memory block (bi, bj) to its pristine input
// version: an in-memory copy from the level-0 clone, or a pager demote
// to the spill file's pristine region.
func (co *coordinator[E]) blockRestore(bi, bj int) {
	if co.pager == nil {
		copy(co.t.Block(bi, bj), co.pristine.Block(bi, bj))
		return
	}
	co.pager.Demote(bi, bj)
}

// notePageErr records the first spill page-in failure from a path that
// cannot return an error; the event loop surfaces it after the current
// event (healing a corrupt final block, aborting otherwise).
func (co *coordinator[E]) notePageErr(err error) {
	if co.pageErr == nil {
		co.pageErr = err
	}
}

// checkPageErr drains recorded page-in failures: a corrupt spilled
// final block heals through the standard poisoned-cone rung (demote to
// pristine + re-dispatch — the pager re-reads the pristine region),
// anything else — a corrupt pristine block, spill-space exhaustion, a
// persistent EIO — aborts the solve. Healing re-dispatches, which can
// fault again, so this loops until quiet; the per-block heal budget
// inside heal bounds the loop.
func (co *coordinator[E]) checkPageErr() error {
	for co.pageErr != nil {
		err := co.pageErr
		co.pageErr = nil
		var pe *pager.ErrPageCorrupt
		if co.opts.Heal && errors.As(err, &pe) && !pe.Pristine {
			if id, ok := co.taskOfBlock(pe.Bi, pe.Bj); ok {
				co.opts.Logf("cluster: %v; healing its cone", pe)
				if herr := co.heal([]int{id}, [][2]int{{pe.Bi, pe.Bj}}); herr != nil {
					return herr
				}
				continue
			}
		}
		return fmt.Errorf("cluster: paged authoritative table failed: %w", err)
	}
	return nil
}

// taskOfBlock maps a memory block to the task owning it.
func (co *coordinator[E]) taskOfBlock(bi, bj int) (int, bool) {
	g := co.opts.SchedSide
	return co.g.TaskID(bi/g, bj/g)
}

// taskShard maps a task to the shard owning its scheduling column.
func (co *coordinator[E]) taskShard(id int) int { return co.shards.Of(co.g.Tasks[id].Bj) }

// depsDone reports whether every predecessor of task id is installed.
func (co *coordinator[E]) depsDone(id int) bool {
	for _, d := range co.g.Tasks[id].Deps {
		if co.state[d] != tsDone {
			return false
		}
	}
	return true
}

// enqueue marks a task ready on its home shard's queue.
func (co *coordinator[E]) enqueue(id int) {
	co.state[id] = tsQueued
	q := co.taskShard(id)
	co.queues[q] = append(co.queues[q], id)
}

// fill pipelines dispatches to one worker up to MaxInflight: its own
// shard's queue first, then work stealing from the lowest-index
// non-empty queue so a dead shard's backlog drains through survivors.
func (co *coordinator[E]) fill(sess *session[E]) {
	for !sess.dead && sess.inflight < co.opts.MaxInflight {
		q := sess.shard
		if len(co.queues[q]) == 0 {
			q = -1
			for s := range co.queues {
				if len(co.queues[s]) > 0 {
					q = s
					break
				}
			}
			if q < 0 {
				return
			}
		}
		id := co.queues[q][0]
		co.queues[q] = co.queues[q][1:]
		if !co.dispatch(sess, id) {
			// A spill page-in failed while assembling the dispatch; the
			// task is requeued and the fault is recorded for the event
			// loop. Stop filling — retrying now would fault again.
			return
		}
	}
}

// fillAll tops up every live worker, lowest session ID first for
// deterministic test schedules.
func (co *coordinator[E]) fillAll() {
	order := make([]*session[E], 0, len(co.sessions))
	for sess := range co.sessions {
		order = append(order, sess)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].id < order[j].id })
	for _, sess := range order {
		co.fill(sess)
	}
}

// dispatch streams one task to a worker: the task's operand blocks at
// their installed final values plus its own blocks at pristine values —
// each only if the worker does not already hold those exact bytes, each
// carrying its CRC32C seal. This is the DMA-of-nearest-operands step of
// the paper's SPE procedure, lifted to the wire. In paged mode the
// bytes come through the pager (resident frame or CRC-verified
// page-in); a page-in failure requeues the task, records the fault for
// the event loop, and reports false.
func (co *coordinator[E]) dispatch(sess *session[E], id int) bool {
	task := co.g.Tasks[id]
	msg := taskMsg{Epoch: co.epoch, Gen: co.gen[id], TaskID: id}
	var marked []int
	addBlock := func(bi, bj int, final bool) error {
		bid := co.t.BlockID(bi, bj)
		if sess.possess[bid] {
			return nil
		}
		var raw []byte
		if err := co.blockRead(bi, bj, func(cells []E) { raw = encodeCells(cells) }); err != nil {
			return err
		}
		msg.Blocks = append(msg.Blocks, wireBlock{Bi: bi, Bj: bj, CRC: rawCRC(raw), Raw: raw})
		if final {
			// Operands are final; own pristine blocks are not — the
			// worker overwrites them, so they are never "possessed".
			sess.possess[bid] = true
			marked = append(marked, bid)
		}
		co.stats.BlocksStreamed++
		co.stats.BytesStreamed += int64(len(raw))
		return nil
	}
	abort := func(err error) bool {
		// Nothing was sent: unmark possession claimed for this message.
		for _, bid := range marked {
			sess.possess[bid] = false
		}
		co.opts.Logf("cluster: paging in blocks for task %d failed: %v; requeueing", id, err)
		co.enqueue(id)
		co.notePageErr(err)
		return false
	}
	for _, mb := range operandBlocks(task) {
		if err := addBlock(mb[0], mb[1], true); err != nil {
			return abort(err)
		}
	}
	for _, mb := range task.MemoryBlockOrder() {
		if err := addBlock(mb[0], mb[1], false); err != nil {
			return abort(err)
		}
	}
	co.state[id] = tsInflight
	co.inflight[id] = sess
	sess.inflight++
	co.stats.Dispatched++
	co.send(sess, frameDispatch, msg.encode())
	return true
}

// operandBlocks enumerates the memory blocks outside task that any of
// its own blocks reads: the stage-1 row/column interiors plus the two
// stage-2 diagonal blocks, deduplicated, in deterministic order.
func operandBlocks(task sched.Task) [][2]int {
	seen := make(map[[2]int]bool)
	var out [][2]int
	inTask := func(a, b int) bool {
		return a >= task.RowLo && a < task.RowHi && b >= task.ColLo && b < task.ColHi
	}
	add := func(a, b int) {
		if inTask(a, b) {
			return
		}
		k := [2]int{a, b}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for _, mb := range task.MemoryBlockOrder() {
		mi, mj := mb[0], mb[1]
		if mi == mj {
			continue // Stage2Diag is in-place
		}
		add(mi, mi)
		add(mj, mj)
		for k := mi + 1; k < mj; k++ {
			add(mi, k)
			add(k, mj)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// install audits and installs one result. A generation mismatch is a
// stale-version boundary block — a healed or restarted task's old
// answer — and is dropped without error; a CRC mismatch is transport or
// memory corruption and enters the heal ladder.
func (co *coordinator[E]) install(sess *session[E], msg taskMsg) (finished bool, err error) {
	// The epoch fence comes before everything else: a result produced
	// under another leader's epoch (a pre-failover dispatch replayed at
	// us, or a frame laundered through a deposed coordinator) must not
	// even reach the generation logic. No pipeline slot is released —
	// this session never owned a dispatch for that frame.
	if msg.Epoch != co.epoch {
		co.stats.FencedWrites++
		co.opts.Logf("cluster: fenced result from %s: epoch %d, current %d", sess.name, msg.Epoch, co.epoch)
		return false, nil
	}
	id := msg.TaskID
	if id < 0 || id >= len(co.g.Tasks) {
		co.declareDead(sess, fmt.Errorf("result for unknown task %d", id))
		return false, nil
	}
	if msg.Gen != co.gen[id] || co.state[id] != tsInflight || co.inflight[id] != sess {
		co.stats.StaleResults++
		// The dispatch pipeline slot is only released if this session
		// still owns one for the task; a heal already released it.
		co.fill(sess)
		return false, nil
	}
	task := co.g.Tasks[id]
	own := task.MemoryBlockOrder()
	if len(msg.Blocks) != len(own) {
		co.declareDead(sess, fmt.Errorf("result for task %d carries %d blocks, want %d", id, len(msg.Blocks), len(own)))
		return false, nil
	}
	var e E
	width := tableio.ElemWidth(e)
	for i, wb := range msg.Blocks {
		if wb.Bi != own[i][0] || wb.Bj != own[i][1] || len(wb.Raw) != width*co.t.Tile()*co.t.Tile() {
			co.declareDead(sess, fmt.Errorf("result for task %d block %d malformed", id, i))
			return false, nil
		}
		if got := rawCRC(wb.Raw); got != wb.CRC {
			co.stats.SealMismatches++
			mismatch := &resilience.ErrSealMismatch{
				Bi: wb.Bi, Bj: wb.Bj,
				BlockID: co.t.BlockID(wb.Bi, wb.Bj),
				TaskID:  id,
				Want:    wb.CRC, Got: got,
			}
			co.opts.Logf("cluster: %v (worker %s, gen %d)", mismatch, sess.name, msg.Gen)
			if !co.opts.Heal {
				return false, fmt.Errorf("cluster: installing boundary block from worker %s: %w", sess.name, mismatch)
			}
			sess.inflight--
			delete(co.inflight, id)
			co.state[id] = tsNotReady
			return false, co.heal([]int{id}, [][2]int{{wb.Bi, wb.Bj}})
		}
	}
	// The whole result audited clean; install it.
	for _, wb := range msg.Blocks {
		bid := co.t.BlockID(wb.Bi, wb.Bj)
		if err := co.blockInstall(wb.Bi, wb.Bj, wb.Raw); err != nil {
			if co.pager != nil {
				// Disk trouble installing an audited result is not the
				// worker's fault: put the task back on its queue and let
				// the event loop surface the fault (heal or abort).
				// Blocks already installed re-seal on the retry.
				sess.inflight--
				delete(co.inflight, id)
				co.enqueue(id)
				co.notePageErr(err)
				return false, nil
			}
			co.declareDead(sess, err)
			return false, nil
		}
		co.seals.Seal(bid, wb.CRC)
		// A clean install resets the block's heal budget: escalation is
		// for a block that fails *consecutively* after recompute, not one
		// that accumulates unlucky rolls across many cone re-executions.
		delete(co.healCounts, bid)
		sess.possess[bid] = true
	}
	sess.inflight--
	delete(co.inflight, id)
	co.state[id] = tsDone
	co.done++
	co.stats.Accepted++
	if co.replPullC != nil {
		// Reusing the result's Raw slices is safe: frame payloads are
		// never recycled after decode.
		d := resilience.Delta{Kind: resilience.DeltaTaskDone, Epoch: co.epoch, TaskID: id, Gen: msg.Gen}
		for _, wb := range msg.Blocks {
			d.Blocks = append(d.Blocks, resilience.DeltaBlock{Bi: wb.Bi, Bj: wb.Bj, CRC: wb.CRC, Raw: wb.Raw})
		}
		co.replRecord(d)
	}
	for _, succ := range task.Succs {
		if co.state[succ] == tsNotReady && co.depsDone(succ) {
			co.enqueue(succ)
		}
	}
	if co.opts.OnTaskDone != nil {
		co.opts.OnTaskDone(co.done, task)
	}
	co.maybeCheckpoint()
	if done, err := co.maybeFinish(); done || err != nil {
		return done, err
	}
	co.fillAll()
	return false, nil
}

// heal is the poisoned-cone rung, generalized across process
// boundaries: restore every cone block from the pristine snapshot,
// unseal it, forget every worker's copy of it, bump the cone tasks'
// generations (so any result already in flight for the old dispatch is
// recognizably stale), and re-dispatch only the cone. Exhaustion
// escalates to one pristine restart, then to a typed CorruptionError.
func (co *coordinator[E]) heal(seedTasks []int, badBlocks [][2]int) error {
	// The HealAttempts budget is charged per block, not per detection.
	// Fresh corruption on a previously clean block is the fault source
	// still at work, and healing it is this rung doing its job — at
	// scale, first-time detections alone would exhaust any constant
	// global budget (the single-process ladder has the same shape: its
	// rounds heal whole audit batches). The non-convergence signal worth
	// escalating on is a block that fails its seal HealAttempts+1 times
	// *consecutively* — clean installs reset its count.
	worst := 0
	for _, mb := range badBlocks {
		if c := co.healCounts[co.t.BlockID(mb[0], mb[1])]; c > worst {
			worst = c
		}
	}
	if worst >= co.opts.HealAttempts {
		if co.pristineRestarts == 0 {
			co.opts.Logf("cluster: per-block heal budget (%d) exhausted; pristine restart", co.opts.HealAttempts)
			co.restartAll()
			return nil
		}
		return &resilience.CorruptionError{Blocks: badBlocks, TaskIDs: seedTasks, Healed: worst}
	}
	for _, mb := range badBlocks {
		co.healCounts[co.t.BlockID(mb[0], mb[1])]++
	}
	co.healRounds++
	cone := co.g.Cone(seedTasks)
	for _, id := range cone {
		co.resetTask(id)
	}
	// Queued cone members were reset to tsNotReady above; drop them.
	co.purgeQueues()
	for _, id := range cone {
		if co.depsDone(id) {
			co.enqueue(id)
		}
	}
	co.stats.RecomputedTasks += len(cone)
	co.opts.Logf("cluster: heal round %d: re-dispatching %d-task cone of %v", co.healRounds, len(cone), seedTasks)
	co.fillAll()
	return nil
}

// resetTask reverts one task to not-run: pristine blocks, no seals, no
// possession anywhere, generation bumped, completion undone.
func (co *coordinator[E]) resetTask(id int) {
	for _, mb := range co.g.Tasks[id].MemoryBlockOrder() {
		bid := co.t.BlockID(mb[0], mb[1])
		co.blockRestore(mb[0], mb[1])
		co.seals.Unseal(bid)
		for sess := range co.sessions {
			sess.possess[bid] = false
		}
	}
	if co.state[id] == tsDone {
		co.done--
	}
	if s, ok := co.inflight[id]; ok {
		s.inflight--
		delete(co.inflight, id)
	}
	if co.state[id] == tsDone && co.replPullC != nil {
		d := resilience.Delta{Kind: resilience.DeltaTaskReset, Epoch: co.epoch, TaskID: id}
		for _, mb := range co.g.Tasks[id].MemoryBlockOrder() {
			d.Blocks = append(d.Blocks, resilience.DeltaBlock{Bi: mb[0], Bj: mb[1]})
		}
		co.replRecord(d)
	}
	co.state[id] = tsNotReady
	co.gen[id]++
}

// purgeQueues drops queue entries whose state is no longer queued.
func (co *coordinator[E]) purgeQueues() {
	for s := range co.queues {
		kept := co.queues[s][:0]
		for _, id := range co.queues[s] {
			if co.state[id] == tsQueued {
				kept = append(kept, id)
			}
		}
		co.queues[s] = kept
	}
}

// restartAll is the pristine-restart rung: the whole solve reverts to
// the in-memory level-0 snapshot and runs once more with every
// generation bumped. Per-block heal counts reset with it — the state
// they described was wiped, so the fresh epoch gets a fresh budget.
func (co *coordinator[E]) restartAll() {
	for id := range co.g.Tasks {
		co.resetTask(id)
	}
	co.purgeQueues()
	co.healCounts = make(map[int]int)
	co.pristineRestarts++
	co.stats.RecomputedTasks += len(co.g.Tasks)
	for _, task := range co.g.Tasks {
		if co.depsDone(task.ID) {
			co.enqueue(task.ID)
		}
	}
	co.fillAll()
}

// maybeFinish runs the completion check: all tasks installed, then a
// full post-solve seal audit (the defense against coordinator-side
// memory corruption after install). A clean audit writes the final
// checkpoint, releases the workers, and ends the run.
func (co *coordinator[E]) maybeFinish() (bool, error) {
	if co.done < len(co.g.Tasks) {
		return false, nil
	}
	if bad, tasks := co.audit(); len(bad) > 0 {
		co.stats.SealMismatches += len(bad)
		if !co.opts.Heal {
			return false, &resilience.CorruptionError{Blocks: bad, TaskIDs: tasks, Healed: 0}
		}
		return false, co.heal(tasks, bad)
	}
	co.finalCheckpoint()
	for sess := range co.sessions {
		co.send(sess, frameDone, nil)
	}
	return true, nil
}

// audit re-digests every sealed block against its seal. In paged mode
// a block that cannot even be paged back in counts as bad — the heal
// rung demotes it to pristine and recomputes, which is also the right
// response to an unreadable final slot.
func (co *coordinator[E]) audit() (bad [][2]int, tasks []int) {
	seen := make(map[int]bool)
	for _, task := range co.g.Tasks {
		for _, mb := range task.MemoryBlockOrder() {
			bid := co.t.BlockID(mb[0], mb[1])
			want, ok := co.seals.Sealed(bid)
			if !ok {
				continue
			}
			clean := false
			if err := co.blockRead(mb[0], mb[1], func(cells []E) { clean = resilience.BlockCRC(cells) == want }); err != nil {
				co.opts.Logf("cluster: audit page-in of block (%d,%d) failed: %v", mb[0], mb[1], err)
			}
			if !clean {
				bad = append(bad, mb)
				if !seen[task.ID] {
					seen[task.ID] = true
					tasks = append(tasks, task.ID)
				}
			}
		}
	}
	return bad, tasks
}

// maybeCheckpoint writes a periodic NPCK snapshot.
func (co *coordinator[E]) maybeCheckpoint() {
	co.sinceCkpt++
	if co.opts.CheckpointPath == "" || co.opts.CheckpointEvery <= 0 || co.sinceCkpt < co.opts.CheckpointEvery {
		return
	}
	co.sinceCkpt = 0
	co.writeCheckpoint()
}

// finalCheckpoint persists the completed solve when a path is set.
func (co *coordinator[E]) finalCheckpoint() {
	if co.opts.CheckpointPath == "" {
		return
	}
	co.writeCheckpoint()
}

func (co *coordinator[E]) writeCheckpoint() {
	var e E
	meta := resilience.Meta{
		N: co.t.Len(), Tile: co.t.Tile(), SchedSide: co.opts.SchedSide,
		Tasks: len(co.g.Tasks), ElemBytes: tableio.ElemWidth(e),
	}
	done := make([]bool, len(co.g.Tasks))
	var blocks [][2]int
	for _, task := range co.g.Tasks {
		if co.state[task.ID] == tsDone {
			done[task.ID] = true
			blocks = append(blocks, task.MemoryBlockOrder()...)
		}
	}
	if err := resilience.SaveCheckpointFile(co.opts.CheckpointPath, meta, done, co.t, blocks); err != nil {
		co.stats.CheckpointErrors++
		co.opts.Logf("cluster: checkpoint write failed: %v", err)
		return
	}
	co.stats.Checkpoints++
}

// resume pre-completes tasks from the checkpoint file, sealing restored
// blocks so audits cover resumed state. The stale-temp sweep runs first
// and is pid-aware, so a peer coordinator sharing the directory keeps
// its in-flight temp.
func (co *coordinator[E]) resume() error {
	if !co.opts.Resume || co.opts.CheckpointPath == "" {
		return nil
	}
	if _, err := resilience.RemoveStaleTemps(co.opts.CheckpointPath); err != nil {
		co.opts.Logf("cluster: stale-temp sweep: %v", err)
	}
	ck, err := resilience.LoadCheckpointFile[E](co.opts.CheckpointPath)
	if errors.Is(err, resilience.ErrNoCheckpoint) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cluster: resume: %w", err)
	}
	if err := ck.Matches(co.t.Len(), co.t.Tile(), co.opts.SchedSide); err != nil {
		co.opts.Logf("cluster: ignoring checkpoint: %v", err)
		return nil
	}
	if err := co.applyCheckpoint(ck); err != nil {
		return err
	}
	co.opts.Logf("cluster: resumed %d/%d tasks from %s", co.stats.Resumed, len(co.g.Tasks), co.opts.CheckpointPath)
	return nil
}

// applyCheckpoint pre-completes tasks from a validated snapshot —
// either a loaded NPCK file (resume) or a replica's delta-built shadow
// (failover takeover). Restored blocks are sealed so audits cover them.
func (co *coordinator[E]) applyCheckpoint(ck *resilience.Checkpoint[E]) error {
	if err := ck.Matches(co.t.Len(), co.t.Tile(), co.opts.SchedSide); err != nil {
		return fmt.Errorf("cluster: applying checkpoint: %w", err)
	}
	for _, task := range co.g.Tasks {
		if !ck.Done[task.ID] {
			continue
		}
		complete := true
		for _, mb := range task.MemoryBlockOrder() {
			if !ck.HasBlock(mb[0], mb[1]) {
				complete = false
				break
			}
		}
		if !complete {
			co.opts.Logf("cluster: checkpoint marks task %d done but lacks its blocks; recomputing it", task.ID)
			continue
		}
		co.state[task.ID] = tsDone
		co.done++
		co.stats.Resumed++
	}
	if co.pager != nil {
		// Paged mode: restored blocks go through the pager (written,
		// sealed final, spillable) instead of the input table.
		for _, task := range co.g.Tasks {
			if co.state[task.ID] != tsDone {
				continue
			}
			for _, mb := range task.MemoryBlockOrder() {
				cells, ok := ck.Block(mb[0], mb[1])
				if !ok {
					continue // completeness was verified above
				}
				dst, err := co.pager.Acquire(mb[0], mb[1])
				if err == nil {
					copy(dst, cells)
					err = co.pager.Complete(mb[0], mb[1])
					co.pager.Release(mb[0], mb[1])
				}
				if err != nil {
					return fmt.Errorf("cluster: applying checkpoint block (%d,%d): %w", mb[0], mb[1], err)
				}
				co.seals.Seal(co.t.BlockID(mb[0], mb[1]), resilience.BlockCRC(cells))
			}
		}
		return nil
	}
	if err := ck.Apply(co.t); err != nil {
		return fmt.Errorf("cluster: applying checkpoint: %w", err)
	}
	for _, task := range co.g.Tasks {
		if co.state[task.ID] != tsDone {
			continue
		}
		for _, mb := range task.MemoryBlockOrder() {
			co.seals.Seal(co.t.BlockID(mb[0], mb[1]), resilience.BlockCRC(co.t.Block(mb[0], mb[1])))
		}
	}
	return nil
}

// broadcastAbort ends the run toward the workers. A fenced abort (we
// were deposed) broadcasts frameFenced with the winning epoch — a
// re-home signal, the workers' solve is still alive under the new
// leader — while every other abort is terminal.
func (co *coordinator[E]) broadcastAbort(err error) {
	var fenced *ErrEpochFenced
	if errors.As(err, &fenced) {
		payload := encodeEpoch(fenced.Current)
		for sess := range co.sessions {
			co.send(sess, frameFenced, payload)
		}
		return
	}
	co.broadcastFail(err.Error())
}

// broadcastFail tells every live worker the run is over and why, so
// they exit instead of reconnecting into a void.
func (co *coordinator[E]) broadcastFail(reason string) {
	payload := failMsg{Reason: reason}.encode()
	for sess := range co.sessions {
		co.send(sess, frameFail, payload)
	}
}
