package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tableio"
	"cellnpdp/internal/tri"
)

// Coordinator high availability: a warm standby tails the primary's
// completion log and takes over its wavefront when the primary goes
// silent. The direction of replication is primary-dials-standby — the
// primary is the only side that knows a solve exists — and the stream
// reuses the cluster frame codec: a replication hello carrying the full
// job description, then one frameDelta per completion-log record (NPKD,
// see resilience/delta.go), with pings renewing the standby's lease
// while the wavefront is quiet.
//
// The failover ladder (DESIGN.md §10):
//
//	lease expiry   → the standby heard nothing (frames or pings) for
//	                 LeaseAfter; the primary is presumed dead
//	epoch bump     → the standby becomes leader at old-epoch+1; every
//	                 frame it emits carries the new epoch
//	worker re-home → workers' reconnect rotation reaches the standby's
//	                 address; their hellos carry the highest epoch seen,
//	                 so a zombie primary that answers first deposes
//	                 itself instead of splitting the brain
//	resume         → the replicated checkpoint pre-completes every
//	                 fully-replicated task; the remaining wavefront
//	                 re-dispatches and the solve finishes bit-identical
//	                 (min-plus relaxation is idempotent, so recomputing
//	                 a partially-replicated task cannot change bytes)

// runReplicator is the primary-side push goroutine: it maintains one
// connection to the standby, opens every (re)connect with a full-state
// resync, then streams incremental completion-log records pulled from
// the event loop. Replication is best-effort — a dead standby costs the
// solve nothing but log lines.
func (co *coordinator[E]) runReplicator(ctx context.Context) {
	defer co.writers.Done()
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		<-co.stop
		cancel()
	}()
	dial := co.opts.ReplicaDial
	if dial == nil {
		addr := co.opts.ReplicaAddr
		dial = func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	backoff := resilience.RetryPolicy{BaseDelay: 100 * time.Millisecond, Jitter: true}
	attempt := 0
	for {
		if co.stopped() {
			return // never connected at shutdown: the standby's lease decides
		}
		conn, err := dial(rctx)
		if err != nil {
			attempt++
			if attempt == 1 || attempt%8 == 0 {
				co.opts.Logf("cluster: replica dial failed (attempt %d): %v", attempt, err)
			}
			if !sleepCtx(rctx, backoff.Backoff(attempt)) {
				return
			}
			continue
		}
		attempt = 0
		fenced, err := co.replSession(conn)
		conn.Close()
		if fenced {
			// evFenced is on its way to the event loop; the run is about
			// to abort. Pushing anywhere else would be a fenced write.
			<-co.stop
			return
		}
		if co.stopped() {
			return
		}
		co.opts.Logf("cluster: replica stream lost: %v", err)
		if !sleepCtx(rctx, backoff.Backoff(1)) {
			return
		}
	}
}

// replSession runs one replication connection: handshake, full resync,
// then incremental pulls until the stream breaks, the standby fences
// us, or the run ends (which delivers the final disposition in-band).
func (co *coordinator[E]) replSession(conn net.Conn) (fenced bool, err error) {
	var e E
	bw := bufio.NewWriter(conn)
	hello := replHelloMsg{
		Epoch:       co.epoch,
		ElemBytes:   tableio.ElemWidth(e),
		N:           co.t.Len(),
		Tile:        co.t.Tile(),
		SchedSide:   co.opts.SchedSide,
		Shards:      co.shards.NumShards(),
		Stage1:      uint8(co.stage1),
		HeartbeatMS: uint32(co.opts.HeartbeatEvery / time.Millisecond),
		DeadlineMS:  uint32(co.opts.DeadlineAfter / time.Millisecond),
		Name:        "primary",
	}
	conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if err := sendMsg(bw, frameReplHello, hello.encode()); err != nil {
		return false, err
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, payload, err := readFrame(conn)
	if err != nil {
		return false, err
	}
	switch typ {
	case frameReplWelcome:
	case frameFenced:
		cur, _ := decodeEpoch(payload)
		co.post(event[E]{kind: evFenced, repl: replHelloMsg{Epoch: cur}})
		return true, &ErrEpochFenced{Epoch: co.epoch, Current: cur, Role: "coordinator"}
	case frameFail:
		f, _ := decodeFail(payload)
		return false, fmt.Errorf("cluster: standby rejected replication: %s", f.Reason)
	default:
		return false, fmt.Errorf("cluster: expected replication welcome, got frame type %d", typ)
	}

	// The reader half watches for a post-handshake fence — the standby
	// took over while we were partitioned, then our stream reconnected
	// into the new leader. Any other inbound traffic or a read error
	// ends the session.
	readerFenced := make(chan uint32, 1)
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		conn.SetReadDeadline(time.Time{})
		for {
			typ, payload, err := readFrame(conn)
			if err != nil {
				return
			}
			if typ == frameFenced {
				if cur, derr := decodeEpoch(payload); derr == nil {
					readerFenced <- cur
					co.post(event[E]{kind: evFenced, repl: replHelloMsg{Epoch: cur}})
				}
				return
			}
		}
	}()

	full := true
	for {
		select {
		case <-co.stop:
			co.sendReplFinal(conn, bw, full)
			return false, nil
		case <-readerDone:
			select {
			case cur := <-readerFenced:
				return true, &ErrEpochFenced{Epoch: co.epoch, Current: cur, Role: "coordinator"}
			default:
				return false, errors.New("cluster: replica closed the stream")
			}
		default:
		}
		pull := replPull{full: full, reply: make(chan []resilience.Delta, 1)}
		select {
		case co.replPullC <- pull:
		case <-co.stop:
			co.sendReplFinal(conn, bw, full)
			return false, nil
		case <-readerDone:
			select {
			case cur := <-readerFenced:
				return true, &ErrEpochFenced{Epoch: co.epoch, Current: cur, Role: "coordinator"}
			default:
				return false, errors.New("cluster: replica closed the stream")
			}
		}
		// Once the event loop accepted the pull it replies synchronously
		// within the same select case, so this receive cannot hang.
		batch := <-pull.reply
		full = false
		for _, d := range batch {
			conn.SetWriteDeadline(time.Now().Add(co.opts.DeadlineAfter))
			if err := sendMsg(bw, frameDelta, d.Encode()); err != nil {
				return false, err
			}
		}
		if len(batch) == 0 {
			// Nothing to push: renew the standby's lease and idle one
			// heartbeat.
			conn.SetWriteDeadline(time.Now().Add(co.opts.DeadlineAfter))
			if err := sendMsg(bw, framePing, nil); err != nil {
				return false, err
			}
			t := time.NewTimer(co.opts.HeartbeatEvery)
			select {
			case <-co.stop:
			case <-readerDone:
			case <-t.C:
			}
			t.Stop()
		}
	}
}

// sendReplFinal delivers the run's disposition to the standby: done
// (the standby applies its checkpoint and returns without taking over),
// fail (the standby surfaces the error), or nothing for a silent death.
// needFull means this session never flushed its opening resync, so the
// tail below must be a whole snapshot rather than incremental records.
func (co *coordinator[E]) sendReplFinal(conn net.Conn, bw *bufio.Writer, needFull bool) {
	f := co.replFinal
	if f.typ == 0 {
		return
	}
	if f.typ == frameDone {
		// The event loop has exited — close(co.stop) is the release
		// barrier — so the un-pulled tail of the completion log is stable
		// and safe to read from this goroutine. Flushing it before the
		// done frame means the standby's clean-finish return hands back
		// the complete solved table, not the table minus the last batch.
		tail := co.replPending
		if needFull || co.replFullSync {
			tail = co.snapshotDeltas()
		}
		for _, d := range tail {
			conn.SetWriteDeadline(time.Now().Add(co.opts.DeadlineAfter))
			if err := sendMsg(bw, frameDelta, d.Encode()); err != nil {
				return
			}
		}
	}
	var payload []byte
	if f.typ == frameFail {
		payload = failMsg{Reason: f.reason}.encode()
	}
	conn.SetWriteDeadline(time.Now().Add(co.opts.DeadlineAfter))
	sendMsg(bw, f.typ, payload)
}

// stopped reports whether the run has ended.
func (co *coordinator[E]) stopped() bool {
	select {
	case <-co.stop:
		return true
	default:
		return false
	}
}

// StandbyOptions configures RunStandby.
type StandbyOptions struct {
	// Options configures the coordinator the standby becomes on
	// takeover. Geometry-and-schedule fields (SchedSide, Shards,
	// Stage1, HeartbeatEvery, DeadlineAfter) are overridden by the
	// primary's replication hello — one schedule and one kernel choice
	// cluster-wide is what makes the resumed solve bit-identical.
	Options
	// LeaseAfter is how long the standby tolerates silence (no deltas,
	// no pings) from the primary before assuming leadership; 0 means
	// twice the effective DeadlineAfter. It must exceed the primary's
	// heartbeat period by enough to absorb scheduling jitter, or the
	// standby will depose a healthy primary.
	LeaseAfter time.Duration
	// OnDelta, when non-nil, observes replication progress: it is
	// called after each applied record with the replicated-done task
	// count. Chaos schedules key coordinator kills on it.
	OnDelta func(done int)
	// OnTakeover, when non-nil, fires once when the lease expires,
	// before the takeover coordinator starts, with the new epoch.
	OnTakeover func(epoch uint32)
	// StandbyStats, when non-nil, receives the standby-phase counters
	// (takeover coordinator counters go to Options.Stats as usual).
	StandbyStats *StandbyStats
}

// StandbyStats counts the replication phase of a standby's life.
type StandbyStats struct {
	// TookOver reports whether the lease expired and this standby
	// became the leader.
	TookOver bool
	// Epoch is the epoch the standby took over at (0 if it never did).
	Epoch uint32
	// Records / Resyncs count applied delta records and full-state
	// resyncs (every stream (re)connect starts one).
	Records int
	Resyncs int
	// FencedWrites counts replication frames rejected for a stale
	// epoch while standing by.
	FencedWrites int
	// ReplicatedTasks is the completed-task count in the replica
	// checkpoint when the standby phase ended.
	ReplicatedTasks int
}

// standby event kinds (standbyEv.kind).
const (
	sbReplConn = iota
	sbPing
	sbDelta
	sbDone
	sbFail
	sbLost
)

type standbyEv struct {
	kind   int
	conn   net.Conn
	hello  replHelloMsg
	delta  resilience.Delta
	reason string
	err    error
}

// RunStandby runs a warm-standby coordinator: it accepts the primary's
// replication stream on ln, folds completion-log deltas into an
// in-memory checkpoint, and — if the primary goes silent past the
// lease — takes over the solve on the same listener at epoch+1,
// resuming from the replicated state. Worker connections arriving
// before takeover are answered with a retryable "standby" frame so
// their reconnect rotation keeps probing.
//
// Returns nil without taking over when the primary reports the solve
// complete (the replicated result is applied to t), the primary's
// error when it reports failure, or the takeover coordinator's result
// after a failover. The lease clock only starts at first contact from
// a primary; cancel ctx to abandon a standby that never hears one.
func RunStandby[E semiring.Elem](ctx context.Context, ln net.Listener, t *tri.Tiled[E], opts StandbyOptions) error {
	defer ln.Close()
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	lease := opts.LeaseAfter
	if lease <= 0 {
		d := opts.DeadlineAfter
		if d <= 0 {
			d = DefaultDeadlineAfter
		}
		lease = 2 * d
	}

	conns := make(chan net.Conn, 16)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				close(conns)
				return
			}
			conns <- c
		}
	}()

	events := make(chan standbyEv, 64)
	stopped := make(chan struct{})
	defer close(stopped)
	post := func(ev standbyEv) bool {
		select {
		case events <- ev:
			return true
		case <-stopped:
			if ev.conn != nil && ev.kind == sbReplConn {
				ev.conn.Close()
			}
			return false
		}
	}

	handshake := func(c net.Conn) {
		c.SetReadDeadline(time.Now().Add(10 * time.Second))
		typ, payload, err := readFrame(c)
		if err != nil {
			c.Close()
			return
		}
		switch typ {
		case frameHello:
			// A worker probing for a leader. Standby is retryable — the
			// worker's rotation keeps both addresses warm.
			c.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if _, derr := decodeHello(payload); derr != nil {
				var vErr *ErrProtocolVersion
				if errors.As(derr, &vErr) {
					writeFrame(c, frameFail, failMsg{Reason: derr.Error()}.encode())
				}
			} else {
				writeFrame(c, frameStandby, nil)
			}
			c.Close()
		case frameReplHello:
			m, derr := decodeReplHello(payload)
			if derr != nil {
				var vErr *ErrProtocolVersion
				if errors.As(derr, &vErr) {
					c.SetWriteDeadline(time.Now().Add(10 * time.Second))
					writeFrame(c, frameFail, failMsg{Reason: derr.Error()}.encode())
				}
				c.Close()
				return
			}
			c.SetReadDeadline(time.Time{})
			post(standbyEv{kind: sbReplConn, conn: c, hello: m})
		default:
			c.Close()
		}
	}

	tail := func(c net.Conn) {
		// Rolling-progress deadline, window = the lease: a stream making
		// progress never times out, and a read parked past the lease is a
		// dead primary by this protocol's own definition — the event loop
		// will have taken over, so unpark and report the loss.
		sr := &sessionReader{conn: c, window: lease}
		for {
			typ, payload, err := readFrame(sr)
			if err != nil {
				post(standbyEv{kind: sbLost, conn: c, err: err})
				return
			}
			switch typ {
			case framePing:
				post(standbyEv{kind: sbPing, conn: c})
			case frameDelta:
				d, derr := resilience.DecodeDelta(payload)
				if derr != nil {
					post(standbyEv{kind: sbLost, conn: c, err: derr})
					return
				}
				if !post(standbyEv{kind: sbDelta, conn: c, delta: d}) {
					return
				}
			case frameDone:
				post(standbyEv{kind: sbDone, conn: c})
				return
			case frameFail:
				f, _ := decodeFail(payload)
				post(standbyEv{kind: sbFail, conn: c, reason: f.Reason})
				return
			default:
				post(standbyEv{kind: sbLost, conn: c, err: fmt.Errorf("cluster: unexpected frame type %d on replication stream", typ)})
				return
			}
		}
	}

	var (
		sstats   StandbyStats
		ck       *resilience.Checkpoint[E]
		cur      net.Conn
		curHello replHelloMsg
		maxSeen  uint32 = 1
		doneN    int
		leaseT   *time.Timer
		leaseC   <-chan time.Time
	)
	flushStats := func() {
		sstats.ReplicatedTasks = doneN
		if opts.StandbyStats != nil {
			*opts.StandbyStats = sstats
		}
	}
	defer flushStats()
	var e E
	width := tableio.ElemWidth(e)

	fence := func(c net.Conn, epoch uint32) {
		sstats.FencedWrites++
		c.SetWriteDeadline(time.Now().Add(10 * time.Second))
		writeFrame(c, frameFenced, encodeEpoch(maxSeen))
		c.Close()
		opts.Logf("cluster: standby fenced replication at stale epoch %d (highest seen %d)", epoch, maxSeen)
	}

	for {
		select {
		case <-ctx.Done():
			if cur != nil {
				cur.Close()
			}
			return ctx.Err()

		case c, ok := <-conns:
			if !ok {
				if cur != nil {
					cur.Close()
				}
				return errors.New("cluster: standby listener closed")
			}
			go handshake(c)

		case <-leaseC:
			// Lease expired: the primary is dead (or unreachably
			// partitioned, which the epoch fence makes equivalent).
			if cur != nil {
				cur.Close()
			}
			epoch := maxSeen + 1
			sstats.TookOver = true
			sstats.Epoch = epoch
			flushStats()
			opts.Logf("cluster: standby lease expired after %v; taking over at epoch %d with %d/%d tasks replicated",
				lease, epoch, doneN, len(ck.Done))
			copts := opts.Options
			copts.Epoch = epoch
			copts.SchedSide = curHello.SchedSide
			copts.Shards = curHello.Shards
			copts.Stage1 = perfmodel.Kernel(curHello.Stage1)
			copts.HeartbeatEvery = time.Duration(curHello.HeartbeatMS) * time.Millisecond
			copts.DeadlineAfter = time.Duration(curHello.DeadlineMS) * time.Millisecond
			if opts.OnTakeover != nil {
				opts.OnTakeover(epoch)
			}
			return coordinate(ctx, &gateListener{ch: conns, real: ln}, t, copts, ck)

		case ev := <-events:
			if ev.kind == sbReplConn {
				m := ev.hello
				if m.N != t.Len() || m.Tile != t.Tile() || m.ElemBytes != width {
					ev.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
					writeFrame(ev.conn, frameFail, failMsg{Reason: fmt.Sprintf(
						"standby geometry n=%d tile=%d elem=%d does not match stream n=%d tile=%d elem=%d",
						t.Len(), t.Tile(), width, m.N, m.Tile, m.ElemBytes)}.encode())
					ev.conn.Close()
					continue
				}
				if m.Epoch < maxSeen {
					fence(ev.conn, m.Epoch)
					continue
				}
				// Adopt the stream. Rebuilding the checkpoint is safe:
				// every stream opens with a full resync, so no increment
				// is ever lost to the reset.
				mblocks := (m.N + m.Tile - 1) / m.Tile
				ms := (mblocks + m.SchedSide - 1) / m.SchedSide
				meta := resilience.Meta{
					N: m.N, Tile: m.Tile, SchedSide: m.SchedSide,
					Tasks: ms * (ms + 1) / 2, ElemBytes: m.ElemBytes,
				}
				nck, err := resilience.NewCheckpoint[E](meta)
				if err != nil {
					ev.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
					writeFrame(ev.conn, frameFail, failMsg{Reason: err.Error()}.encode())
					ev.conn.Close()
					continue
				}
				if cur != nil {
					cur.Close()
				}
				cur, curHello, ck, doneN = ev.conn, m, nck, 0
				maxSeen = m.Epoch
				ev.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
				if err := writeFrame(ev.conn, frameReplWelcome, encodeEpoch(m.Epoch)); err != nil {
					ev.conn.Close()
					cur = nil
					continue
				}
				if leaseT == nil {
					leaseT = time.NewTimer(lease)
					leaseC = leaseT.C
					defer leaseT.Stop()
				} else {
					resetLease(leaseT, leaseC, lease)
				}
				opts.Logf("cluster: standby tailing %s at epoch %d (n=%d tile=%d shards=%d)",
					m.Name, m.Epoch, m.N, m.Tile, m.Shards)
				go tail(ev.conn)
				continue
			}
			if ev.conn != cur {
				continue // a closed-over stream's last gasp
			}
			switch ev.kind {
			case sbPing:
				resetLease(leaseT, leaseC, lease)
			case sbDelta:
				d := ev.delta
				if d.Epoch != curHello.Epoch {
					fence(cur, d.Epoch)
					cur = nil
					continue
				}
				resetLease(leaseT, leaseC, lease)
				if err := applyDelta(ck, d, &doneN); err != nil {
					opts.Logf("cluster: standby rejecting delta: %v", err)
					cur.Close()
					cur = nil
					continue
				}
				sstats.Records++
				if d.Kind == resilience.DeltaSyncBegin {
					sstats.Resyncs++
				}
				if opts.OnDelta != nil {
					opts.OnDelta(doneN)
				}
			case sbLost:
				// The stream broke but the lease keeps ticking from the
				// last good frame: a primary that is alive will redial,
				// a dead one will run the lease out.
				opts.Logf("cluster: standby lost replication stream: %v", ev.err)
				cur = nil
			case sbDone:
				if err := ck.Apply(t); err != nil {
					return fmt.Errorf("cluster: standby applying final state: %w", err)
				}
				flushStats()
				opts.Logf("cluster: primary finished; standby releasing (%d tasks replicated)", doneN)
				cur.Close()
				return nil
			case sbFail:
				cur.Close()
				return fmt.Errorf("cluster: primary failed: %s", ev.reason)
			}
		}
	}
}

// applyDelta folds one validated record into the replica checkpoint.
func applyDelta[E semiring.Elem](ck *resilience.Checkpoint[E], d resilience.Delta, doneN *int) error {
	switch d.Kind {
	case resilience.DeltaSyncBegin:
		ck.Reset()
		*doneN = 0
	case resilience.DeltaTaskDone:
		for _, b := range d.Blocks {
			//nolint:npdplint(verifyfirst) DecodeDelta re-digested every block seal before this record could exist
			if err := ck.PutBlock(b.Bi, b.Bj, b.Raw); err != nil {
				return err
			}
		}
		if d.TaskID >= 0 && d.TaskID < len(ck.Done) && !ck.Done[d.TaskID] {
			*doneN++
		}
		if err := ck.MarkDone(d.TaskID); err != nil {
			return err
		}
	case resilience.DeltaTaskReset:
		if d.TaskID >= 0 && d.TaskID < len(ck.Done) && ck.Done[d.TaskID] {
			*doneN--
		}
		ck.ClearDone(d.TaskID)
		for _, b := range d.Blocks {
			ck.DropBlock(b.Bi, b.Bj)
		}
	}
	return nil
}

// resetLease re-arms the lease timer, draining a stale expiry so a
// frame that raced the timer does not leave a pending takeover signal.
func resetLease(t *time.Timer, c <-chan time.Time, d time.Duration) {
	if t == nil {
		return
	}
	if !t.Stop() {
		select {
		case <-c:
		default:
		}
	}
	t.Reset(d)
}

// gateListener hands the standby's accept stream to the takeover
// coordinator: the accept-pump goroutine keeps pushing raw connections
// into ch (including any buffered before the takeover), and the
// coordinator's acceptLoop pops them here exactly as if it owned the
// socket. Close closes the real listener, which ends the pump and then
// this listener.
type gateListener struct {
	ch   chan net.Conn
	real net.Listener
}

func (g *gateListener) Accept() (net.Conn, error) {
	c, ok := <-g.ch
	if !ok {
		return nil, net.ErrClosed
	}
	return c, nil
}

func (g *gateListener) Close() error   { return g.real.Close() }
func (g *gateListener) Addr() net.Addr { return g.real.Addr() }
