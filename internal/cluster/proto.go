// Package cluster implements the sharded coordinator/worker solve
// protocol: the coordinator owns the authoritative table and the task
// dependence graph, partitions the scheduling-block grid into contiguous
// column shards, and streams sealed operand blocks to worker processes
// that execute tasks with the same engine code path the single-process
// solvers use. The mapping onto the paper is direct: the coordinator
// plays the PPE (it owns main memory and the scheduler), the workers
// play the SPE ring (each computes blocks in its local store), and the
// boundary-block streaming is the DMA of nearest-block operands —
// except here every transfer carries a CRC32C seal, so silent transport
// or memory corruption is detected at install time and healed with the
// poisoned-cone recompute of the single-process engines (see DESIGN.md
// §10).
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tableio"
)

// Wire format: length-prefixed frames, every frame checksummed.
//
//	type    uint8   frame kind
//	length  uint32  payload byte count (LE)
//	payload length bytes
//	crc     uint32  CRC32C of type byte + payload (LE)
//
// Messages (payload layouts, all little-endian):
//
//	hello    magic "NPCL", version uint16, epoch uint32, nameLen uint16,
//	         name (epoch = highest the worker has ever been welcomed at,
//	         0 on first contact)
//	welcome  version uint16, elem uint16, n uint64, tile uint32,
//	         sched uint32, shards uint32, slot uint32, stage1 uint8,
//	         heartbeatMS uint32, deadlineMS uint32, epoch uint32
//	dispatch epoch uint32, gen uint32, task uint32, nblocks uint32,
//	         then per block: bi uint32, bj uint32, crc uint32,
//	         nbytes uint32, cells
//	result   same layout as dispatch
//	ping     empty
//	done     empty
//	fail     msgLen uint16, message
//	standby  empty (a standby telling a worker it is not a leader yet:
//	         retryable, unlike fail)
//	fenced   epoch uint32 (the fencing side's current epoch; to a worker
//	         it means re-home, to a deposed coordinator it is terminal)
//	rhello   magic "NPCL", version uint16, epoch uint32, elem uint16,
//	         n uint64, tile uint32, sched uint32, shards uint32,
//	         stage1 uint8, heartbeatMS uint32, deadlineMS uint32,
//	         nameLen uint16, name (a primary opening its replication
//	         stream to a standby: the full job description, so a
//	         takeover resumes with identical geometry and kernel)
//	rwelcome epoch uint32 (the standby accepting the stream)
//	delta    one resilience NPKD delta record (see resilience/delta.go)
//
// Block cells travel in the canonical tableio element encoding
// (little-endian at the element width), so the per-block crc field —
// CRC32C over exactly those bytes — is by construction the same value
// resilience.BlockCRC computes over the decoded cells. One digest
// serves as both the transport check and the block seal.

// ProtoMagic opens every hello.
const ProtoMagic = "NPCL"

// ProtoVersion is the current protocol version; coordinator and worker
// must match exactly. Version 2 added epoch fencing and the standby
// replication stream.
const ProtoVersion uint16 = 2

// Frame kinds.
const (
	frameHello byte = iota + 1
	frameWelcome
	frameDispatch
	frameResult
	framePing
	frameDone
	frameFail
	frameStandby
	frameFenced
	frameReplHello
	frameReplWelcome
	frameDelta
)

// maxFramePayload bounds what a reader will buffer for one frame. The
// largest legitimate frame is a dispatch carrying a long operand row of
// memory blocks; 1 GiB clears any geometry the checkpoint codec accepts
// while still rejecting a nonsense length before allocation.
const maxFramePayload = 1 << 30

// castagnoli is the CRC32C table shared by frame checksums and block
// seals (the same polynomial resilience.BlockCRC uses).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeFrame emits one checksummed frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum(hdr[:1], castagnoli), castagnoli, payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("cluster: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("cluster: writing frame payload: %w", err)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("cluster: writing frame checksum: %w", err)
	}
	return nil
}

// readFrame reads and verifies one frame.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("cluster: frame payload %d exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("cluster: reading frame payload: %w", err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, fmt.Errorf("cluster: reading frame checksum: %w", err)
	}
	want := binary.LittleEndian.Uint32(tail[:])
	got := crc32.Update(crc32.Checksum(hdr[:1], castagnoli), castagnoli, payload)
	if got != want {
		return 0, nil, fmt.Errorf("cluster: frame checksum mismatch: got %08x, want %08x", got, want)
	}
	return hdr[0], payload, nil
}

// helloMsg is a worker's opening frame. Epoch is the highest epoch the
// worker has ever been welcomed at (0 before first contact): a
// coordinator seeing a hello from the future knows it has been deposed.
type helloMsg struct {
	Epoch uint32
	Name  string
}

func (m helloMsg) encode() []byte {
	buf := make([]byte, 0, 12+len(m.Name))
	buf = append(buf, ProtoMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, ProtoVersion)
	buf = binary.LittleEndian.AppendUint32(buf, m.Epoch)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Name)))
	return append(buf, m.Name...)
}

func decodeHello(p []byte) (helloMsg, error) {
	if len(p) < 12 || string(p[:4]) != ProtoMagic {
		return helloMsg{}, fmt.Errorf("cluster: bad hello magic")
	}
	if v := binary.LittleEndian.Uint16(p[4:]); v != ProtoVersion {
		return helloMsg{}, &ErrProtocolVersion{Got: v, Want: ProtoVersion}
	}
	n := int(binary.LittleEndian.Uint16(p[10:]))
	if len(p) != 12+n {
		return helloMsg{}, fmt.Errorf("cluster: hello length mismatch")
	}
	return helloMsg{
		Epoch: binary.LittleEndian.Uint32(p[6:]),
		Name:  string(p[12:]),
	}, nil
}

// welcomeMsg is the coordinator's job description: everything a worker
// needs to rebuild the scheduling graph, size its local table, and pin
// the same stage-1 kernel the coordinator selected (bit-identity across
// the cluster requires one kernel choice for the whole solve).
type welcomeMsg struct {
	ElemBytes   int
	N           int
	Tile        int
	SchedSide   int
	Shards      int
	Slot        int
	Stage1      uint8
	HeartbeatMS uint32
	DeadlineMS  uint32
	Epoch       uint32
}

func (m welcomeMsg) encode() []byte {
	buf := make([]byte, 0, 41)
	buf = binary.LittleEndian.AppendUint16(buf, ProtoVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(m.ElemBytes))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.N))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Tile))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.SchedSide))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Shards))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Slot))
	buf = append(buf, m.Stage1)
	buf = binary.LittleEndian.AppendUint32(buf, m.HeartbeatMS)
	buf = binary.LittleEndian.AppendUint32(buf, m.DeadlineMS)
	return binary.LittleEndian.AppendUint32(buf, m.Epoch)
}

func decodeWelcome(p []byte) (welcomeMsg, error) {
	if len(p) < 2 {
		return welcomeMsg{}, fmt.Errorf("cluster: welcome truncated")
	}
	if v := binary.LittleEndian.Uint16(p[0:]); v != ProtoVersion {
		return welcomeMsg{}, &ErrProtocolVersion{Got: v, Want: ProtoVersion}
	}
	if len(p) != 41 {
		return welcomeMsg{}, fmt.Errorf("cluster: welcome length %d, want 41", len(p))
	}
	m := welcomeMsg{
		ElemBytes:   int(binary.LittleEndian.Uint16(p[2:])),
		N:           int(binary.LittleEndian.Uint64(p[4:])),
		Tile:        int(binary.LittleEndian.Uint32(p[12:])),
		SchedSide:   int(binary.LittleEndian.Uint32(p[16:])),
		Shards:      int(binary.LittleEndian.Uint32(p[20:])),
		Slot:        int(binary.LittleEndian.Uint32(p[24:])),
		Stage1:      p[28],
		HeartbeatMS: binary.LittleEndian.Uint32(p[29:]),
		DeadlineMS:  binary.LittleEndian.Uint32(p[33:]),
		Epoch:       binary.LittleEndian.Uint32(p[37:]),
	}
	if m.ElemBytes != 4 && m.ElemBytes != 8 {
		return welcomeMsg{}, fmt.Errorf("cluster: welcome element width %d not 4 or 8", m.ElemBytes)
	}
	if m.N <= 0 || m.Tile <= 0 || m.SchedSide <= 0 || m.Shards <= 0 {
		return welcomeMsg{}, fmt.Errorf("cluster: welcome geometry implausible: %+v", m)
	}
	return m, nil
}

// wireBlock is one memory block in flight: its tile coordinates, its
// CRC32C seal, and its cells in canonical element encoding.
type wireBlock struct {
	Bi, Bj int
	CRC    uint32
	Raw    []byte
}

// taskMsg is the shared payload of dispatch and result frames: one task,
// the leader epoch and dispatch generation it belongs to, and the blocks
// travelling with it (operands + pristine own blocks outward, computed
// own blocks back). The epoch is sealed under the frame CRC with
// everything else, so a deposed leader cannot launder a stale result by
// rewriting it.
type taskMsg struct {
	Epoch  uint32
	Gen    uint32
	TaskID int
	Blocks []wireBlock
}

func (m taskMsg) encode() []byte {
	size := 16
	for _, b := range m.Blocks {
		size += 16 + len(b.Raw)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, m.Epoch)
	buf = binary.LittleEndian.AppendUint32(buf, m.Gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.TaskID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Blocks)))
	for _, b := range m.Blocks {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b.Bi))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b.Bj))
		buf = binary.LittleEndian.AppendUint32(buf, b.CRC)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Raw)))
		buf = append(buf, b.Raw...)
	}
	return buf
}

func decodeTaskMsg(p []byte) (taskMsg, error) {
	if len(p) < 16 {
		return taskMsg{}, fmt.Errorf("cluster: task message truncated")
	}
	m := taskMsg{
		Epoch:  binary.LittleEndian.Uint32(p[0:]),
		Gen:    binary.LittleEndian.Uint32(p[4:]),
		TaskID: int(binary.LittleEndian.Uint32(p[8:])),
	}
	nblocks := int(binary.LittleEndian.Uint32(p[12:]))
	// Bound the count by what the payload could possibly hold (16 header
	// bytes per block) before sizing the slice, so a CRC-valid frame with
	// a huge nblocks and a tiny payload cannot force a giant allocation.
	if nblocks > (len(p)-16)/16 {
		return taskMsg{}, fmt.Errorf("cluster: task message claims %d blocks, payload holds at most %d", nblocks, (len(p)-16)/16)
	}
	off := 16
	m.Blocks = make([]wireBlock, 0, nblocks)
	for b := 0; b < nblocks; b++ {
		if len(p)-off < 16 {
			return taskMsg{}, fmt.Errorf("cluster: block header %d truncated", b)
		}
		wb := wireBlock{
			Bi:  int(binary.LittleEndian.Uint32(p[off:])),
			Bj:  int(binary.LittleEndian.Uint32(p[off+4:])),
			CRC: binary.LittleEndian.Uint32(p[off+8:]),
		}
		nbytes := int(binary.LittleEndian.Uint32(p[off+12:]))
		off += 16
		if len(p)-off < nbytes {
			return taskMsg{}, fmt.Errorf("cluster: block %d cells truncated", b)
		}
		wb.Raw = p[off : off+nbytes]
		off += nbytes
		m.Blocks = append(m.Blocks, wb)
	}
	if off != len(p) {
		return taskMsg{}, fmt.Errorf("cluster: %d trailing bytes after task message", len(p)-off)
	}
	return m, nil
}

// failMsg reports a fatal worker-side condition before it drops the
// connection, so the coordinator logs a reason instead of a bare EOF.
type failMsg struct {
	Reason string
}

func (m failMsg) encode() []byte {
	r := m.Reason
	if len(r) > 1<<15 {
		r = r[:1<<15]
	}
	buf := make([]byte, 0, 2+len(r))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r)))
	return append(buf, r...)
}

func decodeFail(p []byte) (failMsg, error) {
	if len(p) < 2 || len(p) != 2+int(binary.LittleEndian.Uint16(p)) {
		return failMsg{}, fmt.Errorf("cluster: fail message length mismatch")
	}
	return failMsg{Reason: string(p[2:])}, nil
}

// encodeCells serializes a block's cells in the canonical tableio
// element encoding — the byte stream resilience.BlockCRC digests.
func encodeCells[E semiring.Elem](cells []E) []byte {
	var e E
	width := tableio.ElemWidth(e)
	out := make([]byte, 0, width*len(cells))
	var buf [8]byte
	for _, v := range cells {
		tableio.PutElem(buf[:], v)
		out = append(out, buf[:width]...)
	}
	return out
}

// decodeCells deserializes raw wire bytes into dst, enforcing the exact
// length the destination block requires.
func decodeCells[E semiring.Elem](dst []E, raw []byte) error {
	var e E
	width := tableio.ElemWidth(e)
	if len(raw) != width*len(dst) {
		return fmt.Errorf("cluster: block carries %d bytes, want %d", len(raw), width*len(dst))
	}
	for i := range dst {
		dst[i] = tableio.GetElem[E](raw[i*width : (i+1)*width])
	}
	return nil
}

// rawCRC digests wire cell bytes with the seal polynomial. Because the
// wire encoding is exactly the BlockCRC byte stream, rawCRC(raw) equals
// resilience.BlockCRC(decoded cells); proto tests pin that equivalence.
func rawCRC(raw []byte) uint32 { return crc32.Checksum(raw, castagnoli) }

// sendMsg frames and flushes one message on a buffered writer.
func sendMsg(w *bufio.Writer, typ byte, payload []byte) error {
	if err := writeFrame(w, typ, payload); err != nil {
		return err
	}
	return w.Flush()
}

// replHelloMsg opens a primary's replication stream to a standby: the
// complete job description (geometry, kernel, liveness parameters), so
// the standby can validate its table matches and, on takeover, run the
// resumed solve with identical scheduling and bit-identical kernels.
type replHelloMsg struct {
	Epoch       uint32
	ElemBytes   int
	N           int
	Tile        int
	SchedSide   int
	Shards      int
	Stage1      uint8
	HeartbeatMS uint32
	DeadlineMS  uint32
	Name        string
}

func (m replHelloMsg) encode() []byte {
	buf := make([]byte, 0, 43+len(m.Name))
	buf = append(buf, ProtoMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, ProtoVersion)
	buf = binary.LittleEndian.AppendUint32(buf, m.Epoch)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(m.ElemBytes))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.N))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Tile))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.SchedSide))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Shards))
	buf = append(buf, m.Stage1)
	buf = binary.LittleEndian.AppendUint32(buf, m.HeartbeatMS)
	buf = binary.LittleEndian.AppendUint32(buf, m.DeadlineMS)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Name)))
	return append(buf, m.Name...)
}

func decodeReplHello(p []byte) (replHelloMsg, error) {
	if len(p) < 6 || string(p[:4]) != ProtoMagic {
		return replHelloMsg{}, fmt.Errorf("cluster: bad replication hello magic")
	}
	if v := binary.LittleEndian.Uint16(p[4:]); v != ProtoVersion {
		return replHelloMsg{}, &ErrProtocolVersion{Got: v, Want: ProtoVersion}
	}
	if len(p) < 43 {
		return replHelloMsg{}, fmt.Errorf("cluster: replication hello truncated")
	}
	m := replHelloMsg{
		Epoch:       binary.LittleEndian.Uint32(p[6:]),
		ElemBytes:   int(binary.LittleEndian.Uint16(p[10:])),
		N:           int(binary.LittleEndian.Uint64(p[12:])),
		Tile:        int(binary.LittleEndian.Uint32(p[20:])),
		SchedSide:   int(binary.LittleEndian.Uint32(p[24:])),
		Shards:      int(binary.LittleEndian.Uint32(p[28:])),
		Stage1:      p[32],
		HeartbeatMS: binary.LittleEndian.Uint32(p[33:]),
		DeadlineMS:  binary.LittleEndian.Uint32(p[37:]),
	}
	n := int(binary.LittleEndian.Uint16(p[41:]))
	if len(p) != 43+n {
		return replHelloMsg{}, fmt.Errorf("cluster: replication hello length mismatch")
	}
	m.Name = string(p[43:])
	if m.ElemBytes != 4 && m.ElemBytes != 8 {
		return replHelloMsg{}, fmt.Errorf("cluster: replication hello element width %d not 4 or 8", m.ElemBytes)
	}
	if m.N <= 0 || m.Tile <= 0 || m.SchedSide <= 0 || m.Shards <= 0 {
		return replHelloMsg{}, fmt.Errorf("cluster: replication hello geometry implausible: %+v", m)
	}
	return m, nil
}

// encodeEpoch is the shared payload of fenced and rwelcome frames: the
// sender's current epoch as a bare uint32.
func encodeEpoch(epoch uint32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], epoch)
	return buf[:]
}

func decodeEpoch(p []byte) (uint32, error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("cluster: epoch payload length %d, want 4", len(p))
	}
	return binary.LittleEndian.Uint32(p), nil
}
