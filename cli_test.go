package cellnpdp_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildCLI compiles a command once per test binary run and returns the
// executable path.
var (
	cliOnce  sync.Once
	cliDir   string
	cliErr   error
	cliNames = []string{"cellnpdp", "benchtables", "rnafold", "speviz"}
)

func cliPath(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI builds in -short mode")
	}
	cliOnce.Do(func() {
		cliDir, cliErr = os.MkdirTemp("", "cellnpdp-cli")
		if cliErr != nil {
			return
		}
		for _, n := range cliNames {
			cmd := exec.Command("go", "build", "-o", filepath.Join(cliDir, n), "./cmd/"+n)
			if out, err := cmd.CombinedOutput(); err != nil {
				cliErr = &buildError{name: n, out: string(out), err: err}
				return
			}
		}
	})
	if cliErr != nil {
		t.Fatal(cliErr)
	}
	return filepath.Join(cliDir, name)
}

type buildError struct {
	name string
	out  string
	err  error
}

func (e *buildError) Error() string {
	return "building " + e.name + ": " + e.err.Error() + "\n" + e.out
}

func runCLI(t *testing.T, name string, args ...string) string {
	t.Helper()
	out, err := exec.Command(cliPath(t, name), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLISolverEnginesAgreeOnChecksum(t *testing.T) {
	var checks []string
	for _, eng := range []string{"serial", "tiled", "parallel", "cell"} {
		out := runCLI(t, "cellnpdp", "-n", "300", "-engine", eng, "-seed", "9")
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "d[0][n-1]=") {
				checks = append(checks, line)
			}
		}
	}
	if len(checks) != 4 {
		t.Fatalf("got %d checksum lines: %v", len(checks), checks)
	}
	for _, c := range checks[1:] {
		if c != checks[0] {
			t.Fatalf("engines disagree:\n%s\n%s", checks[0], c)
		}
	}
}

func TestCLISaveAndCrossCheck(t *testing.T) {
	file := filepath.Join(t.TempDir(), "t.npdp")
	runCLI(t, "cellnpdp", "-n", "200", "-engine", "serial", "-save", file)
	out := runCLI(t, "cellnpdp", "-n", "200", "-engine", "cell", "-check", file)
	if !strings.Contains(out, "identical") {
		t.Fatalf("cross-check did not verify:\n%s", out)
	}
	// A different seed must fail the check (non-zero exit).
	cmd := exec.Command(cliPath(t, "cellnpdp"), "-n", "200", "-seed", "2", "-check", file)
	if combined, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("mismatch not detected:\n%s", combined)
	}
}

func TestCLIBenchtablesListAndRun(t *testing.T) {
	list := runCLI(t, "benchtables", "-list")
	for _, want := range []string{"table1", "fig13", "ablations", "utilization"} {
		if !strings.Contains(list, want) {
			t.Errorf("-list missing %q", want)
		}
	}
	out := runCLI(t, "benchtables", "-run", "table1")
	if !strings.Contains(out, "54 cycles") {
		t.Errorf("table1 output missing the 54-cycle note:\n%s", out)
	}
	csv := runCLI(t, "benchtables", "-run", "table1", "-csv")
	if !strings.HasPrefix(csv, "Instruction,") {
		t.Errorf("CSV output malformed:\n%s", csv)
	}
}

func TestCLIRnafold(t *testing.T) {
	out := runCLI(t, "rnafold", "GGGAAAACCC")
	if !strings.Contains(out, "(((....)))") {
		t.Errorf("hairpin not folded:\n%s", out)
	}
	full := runCLI(t, "rnafold", "-full", "GGGGGAAGGGGAAAACCCCAAGGGGAAAACCCCAACCCCC")
	if !strings.Contains(full, "(((((..((((") {
		t.Errorf("multibranch fold missing:\n%s", full)
	}
	constrained := runCLI(t, "rnafold", "-constraints", "x.........", "GGGAAAACCC")
	lines := strings.Split(constrained, "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[1], ".") {
		t.Errorf("constraint ignored:\n%s", constrained)
	}
}

func TestCLISpeviz(t *testing.T) {
	out := runCLI(t, "speviz", "-kernel")
	if !strings.Contains(out, "list-scheduled") || !strings.Contains(out, "pipe0") {
		t.Errorf("kernel view malformed:\n%s", out)
	}
	run := runCLI(t, "speviz", "-run", "-n", "300", "-spes", "4", "-tile", "16")
	if !strings.Contains(run, "SPE0") || !strings.Contains(run, "legend") {
		t.Errorf("gantt view malformed:\n%s", run)
	}
}

// TestCLIWorkersValidation asserts the uniform negative-worker rejection
// across all four engines, through the CLI surface.
func TestCLIWorkersValidation(t *testing.T) {
	for _, eng := range []string{"serial", "tiled", "parallel", "cell"} {
		cmd := exec.Command(cliPath(t, "cellnpdp"), "-n", "100", "-engine", eng, "-workers", "-1")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s engine accepted -workers -1:\n%s", eng, out)
		}
		if !strings.Contains(string(out), "Workers must be non-negative") {
			t.Fatalf("%s engine rejection unclear:\n%s", eng, out)
		}
	}
}

// TestCLITimeout asserts -timeout aborts a solve with the context error.
func TestCLITimeout(t *testing.T) {
	cmd := exec.Command(cliPath(t, "cellnpdp"), "-n", "1500", "-engine", "parallel", "-timeout", "1ns")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expired -timeout still solved:\n%s", out)
	}
	if !strings.Contains(string(out), "deadline") {
		t.Fatalf("timeout error not surfaced:\n%s", out)
	}
}

// TestCLIFaultInjectionRecovers asserts a 5%-fault run with retries
// enabled still produces the serial reference answer (the acceptance
// scenario: complete correctly via retry, no fallback allowed).
func TestCLIFaultInjectionRecovers(t *testing.T) {
	ref := checksumLine(t, runCLI(t, "cellnpdp", "-n", "300", "-engine", "serial"))
	out := runCLI(t, "cellnpdp", "-n", "300", "-engine", "parallel",
		"-faultrate", "0.05", "-faultseed", "7", "-retries", "3", "-fallback=false")
	if got := checksumLine(t, out); got != ref {
		t.Fatalf("faulted run diverged:\n%s\nvs serial\n%s", got, ref)
	}
}

// TestCLIFallbackDegrades asserts an unretried fault degrades the solve
// to the tiled engine with a logged reason — and still gets the right
// answer.
func TestCLIFallbackDegrades(t *testing.T) {
	ref := checksumLine(t, runCLI(t, "cellnpdp", "-n", "300", "-engine", "serial"))
	out := runCLI(t, "cellnpdp", "-n", "300", "-engine", "parallel",
		"-faultrate", "0.6", "-faultseed", "3", "-retries", "0")
	if !strings.Contains(out, "degraded to tiled engine") || !strings.Contains(out, "task") {
		t.Fatalf("degradation not reported with a task-identified reason:\n%s", out)
	}
	if got := checksumLine(t, out); got != ref {
		t.Fatalf("degraded run diverged:\n%s\nvs serial\n%s", got, ref)
	}
}

// TestCLIKillAndResume is the acceptance scenario: a run killed part-way
// by an injected fault leaves a checkpoint; resuming from it with faults
// off completes and is bit-identical to the serial reference (verified
// through the tableio -check path, which compares every cell).
func TestCLIKillAndResume(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.npdp")
	ck := filepath.Join(dir, "solve.npck")
	runCLI(t, "cellnpdp", "-n", "400", "-engine", "serial", "-save", ref)

	// Run 1: unretried injected faults, no fallback — must die with a
	// task-identified error but leave a validated checkpoint behind.
	cmd := exec.Command(cliPath(t, "cellnpdp"), "-n", "400", "-engine", "parallel",
		"-workers", "2", "-faultrate", "0.4", "-faultseed", "5", "-retries", "0",
		"-fallback=false", "-checkpoint", ck, "-checkpoint-every", "1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("faulted run unexpectedly succeeded:\n%s", out)
	}
	if !strings.Contains(string(out), "task") {
		t.Fatalf("failure lacks task identity:\n%s", out)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint left behind: %v\n%s", err, out)
	}

	// Run 2: resume with faults off; must restore completed tasks and
	// finish bit-identical to the serial reference.
	out2 := runCLI(t, "cellnpdp", "-n", "400", "-engine", "parallel",
		"-resume", ck, "-check", ref)
	if !strings.Contains(out2, "resumed ") {
		t.Fatalf("resume not reported:\n%s", out2)
	}
	if !strings.Contains(out2, "identical") {
		t.Fatalf("resumed table not bit-identical to serial reference:\n%s", out2)
	}
}

// TestCLIKillMidSpillResume is the out-of-core acceptance scenario with
// a real SIGKILL: a paged solve under a memory budget far below the
// table footprint is killed mid-spill — no flush, no farewell, torn
// in-flight state — and a fresh process resumes from the committed
// spill index and finishes bit-identical to the serial reference
// (verified through -check, which compares every cell).
func TestCLIKillMidSpillResume(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.npdp")
	spill := filepath.Join(dir, "solve.npsp")
	runCLI(t, "cellnpdp", "-n", "1024", "-engine", "serial", "-save", ref)

	// Run 1: paged solve (tile 16 → 64×64 blocks). SIGKILL lands as soon
	// as a committed index carrying final-block records appears (the
	// temp+rename discipline makes each commit an atomic all-or-nothing
	// event; Create's initial commit is empty, so require records: the
	// NPSX layout is a 28-byte header, 8 bytes per record, 4-byte CRC).
	cmd := exec.Command(cliPath(t, "cellnpdp"), "-n", "1024", "-engine", "parallel",
		"-workers", "2", "-block", "1024", "-memory-budget", "32768", "-spill", spill)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if fi, err := os.Stat(spill + ".idx"); err == nil && fi.Size() >= 28+8+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no spill index with committed records ever appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	if err := cmd.Wait(); err == nil {
		t.Fatal("solve finished before the kill fired; nothing was proven")
	}

	// Run 2: a fresh process recovers the committed blocks, recomputes
	// the rest, and must match the serial reference cell for cell.
	out := runCLI(t, "cellnpdp", "-n", "1024", "-engine", "parallel",
		"-workers", "2", "-block", "1024", "-memory-budget", "32768",
		"-spill", spill, "-resume-spill", "-check", ref)
	if !strings.Contains(out, "resumed ") {
		t.Fatalf("resume not reported:\n%s", out)
	}
	if !strings.Contains(out, "identical") {
		t.Fatalf("resumed paged solve not bit-identical to serial reference:\n%s", out)
	}
}

// TestCLIPagedDiskFaults drives the paged solve through the injected
// disk-fault ladder end to end: torn writes and read-back bit flips at
// 5% must be detected (CRC), healed (pristine demote + cone recompute),
// and still produce the serial reference bit for bit.
func TestCLIPagedDiskFaults(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.npdp")
	runCLI(t, "cellnpdp", "-n", "400", "-engine", "serial", "-save", ref)
	out := runCLI(t, "cellnpdp", "-n", "400", "-engine", "parallel",
		"-block", "1024", "-memory-budget", "16384",
		"-disk-faultrate", "0.05", "-disk-faultseed", "3", "-disk-faultkinds", "torn,flip",
		"-check", ref)
	if !strings.Contains(out, "identical") {
		t.Fatalf("paged solve under disk faults not bit-identical:\n%s", out)
	}
	if !strings.Contains(out, "paged ") {
		t.Fatalf("pager counters not reported:\n%s", out)
	}
}

// TestCLISelfHeal is the corruption acceptance scenario end to end:
// silent bit flips injected at 5% with -heal produce the serial
// reference bit-for-bit (verified through -check, which compares every
// cell) while reporting the heal events; the same run without -heal must
// die with the seal-audit error, never print a wrong answer.
func TestCLISelfHeal(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.npdp")
	runCLI(t, "cellnpdp", "-n", "400", "-engine", "serial", "-save", ref)

	out := runCLI(t, "cellnpdp", "-n", "400", "-engine", "parallel",
		"-faultkinds", "corrupt", "-faultrate", "0.05", "-faultseed", "7",
		"-heal", "-fallback=false", "-check", ref)
	if !strings.Contains(out, "detected ") || !strings.Contains(out, "heal rounds recomputed") {
		t.Fatalf("heal events not reported:\n%s", out)
	}
	if !strings.Contains(out, "identical") {
		t.Fatalf("healed run not bit-identical to serial reference:\n%s", out)
	}

	// Detection without healing: loud failure naming the corrupted block.
	cmd := exec.Command(cliPath(t, "cellnpdp"), "-n", "400", "-engine", "parallel",
		"-faultkinds", "corrupt", "-faultrate", "0.05", "-faultseed", "7",
		"-fallback=false")
	noHeal, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("unhealed corruption run exited 0:\n%s", noHeal)
	}
	if !strings.Contains(string(noHeal), "block seal audit") {
		t.Fatalf("corruption not named in the failure:\n%s", noHeal)
	}
}

// TestCLICellEngineHeals covers the cell engine's heal path through the
// CLI: the DES completes, the wavefront recompute repairs the table, and
// the result matches the serial reference exactly.
func TestCLICellEngineHeals(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.npdp")
	runCLI(t, "cellnpdp", "-n", "300", "-engine", "serial", "-save", ref)
	out := runCLI(t, "cellnpdp", "-n", "300", "-engine", "cell",
		"-faultkinds", "corrupt", "-faultrate", "0.2", "-faultseed", "3",
		"-heal", "-check", ref)
	if !strings.Contains(out, "detected ") || !strings.Contains(out, "identical") {
		t.Fatalf("cell heal run malformed:\n%s", out)
	}
}

// TestCLIResilienceFlagValidation asserts out-of-range resilience knobs
// fail loudly at startup with a message naming the flag.
func TestCLIResilienceFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-faultrate", "1.5"}, "-faultrate must be in [0, 1]"},
		{[]string{"-faultrate", "-0.1"}, "-faultrate must be in [0, 1]"},
		{[]string{"-retries", "-1"}, "-retries must be non-negative"},
		{[]string{"-checkpoint-every", "-2"}, "-checkpoint-every must be non-negative"},
		{[]string{"-heal-attempts", "-1"}, "-heal-attempts must be non-negative"},
		{[]string{"-audit-every", "-3"}, "-audit-every must be non-negative"},
		{[]string{"-faultkinds", "error,bogus"}, `unknown fault kind "bogus"`},
	}
	for _, c := range cases {
		args := append([]string{"-n", "50"}, c.args...)
		cmd := exec.Command(cliPath(t, "cellnpdp"), args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%v accepted:\n%s", c.args, out)
		}
		if !strings.Contains(string(out), c.want) {
			t.Fatalf("%v rejection missing %q:\n%s", c.args, c.want, out)
		}
	}
}

// TestCLIServeDrainsOnSIGTERM is the lifecycle acceptance scenario: a
// serve process with a solve in flight receives SIGTERM, finishes the
// in-flight work (the client still gets its 200), reports the outcome
// summary, and exits 0.
func TestCLIServeDrainsOnSIGTERM(t *testing.T) {
	cmd := exec.Command(cliPath(t, "cellnpdp"), "serve", "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	lines := bufio.NewScanner(stdout)
	var addr string
	for lines.Scan() {
		if rest, ok := strings.CutPrefix(lines.Text(), "listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatal("serve never announced its address")
	}
	base := "http://" + addr

	// Kick off a solve big enough to still be running when SIGTERM lands.
	slow := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/solve", "application/json",
			strings.NewReader(`{"n": 1024, "engine": "tiled"}`))
		if err != nil {
			slow <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			slow <- fmt.Errorf("in-flight solve got %d: %s", resp.StatusCode, body)
			return
		}
		slow <- nil
	}()
	// SIGTERM only once the server confirms the solve is in flight.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		var h struct {
			Inflight int64 `json:"inflight"`
		}
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if h.Inflight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("solve never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-slow; err != nil {
		t.Fatalf("in-flight solve during drain: %v", err)
	}
	var out strings.Builder
	for lines.Scan() {
		out.WriteString(lines.Text())
		out.WriteByte('\n')
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("serve did not exit 0 after SIGTERM: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "drained; outcomes:") || !strings.Contains(out.String(), "200=1") {
		t.Fatalf("drain summary missing or wrong:\n%s", out.String())
	}
}

// checksumLine extracts the d[0][n-1] line for cross-run comparison.
func checksumLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "d[0][n-1]=") {
			return line
		}
	}
	t.Fatalf("no checksum line in output:\n%s", out)
	return ""
}

// TestCLIClusterChaos is the distributed-chaos acceptance scenario end
// to end, with real processes and a real SIGKILL: a loopback cluster of
// three worker processes runs a seeded schedule that SIGKILLs one worker
// mid-wavefront while every worker silently corrupts a seeded subset of
// its sealed result blocks. The coordinator must absorb the death,
// detect every corrupted boundary block at install, heal the poisoned
// cones, and finish bit-identical to the serial engine. The same
// corruption without -heal must die with the typed seal-mismatch error,
// never print a wrong answer.
func TestCLIClusterChaos(t *testing.T) {
	out := runCLI(t, "cellnpdp", "cluster", "-n", "704", "-cluster-workers", "3",
		"-chaos-kills", "1", "-chaos-seed", "5",
		"-faultrate", "0.25", "-faultseed", "42",
		"-heal", "-verify", "-timeout", "2m")
	if !strings.Contains(out, "verified against serial engine: identical") {
		t.Fatalf("chaos run not verified identical:\n%s", out)
	}
	stats := clusterStatsLine(t, out)
	if !strings.Contains(stats, " deaths=1 ") && !strings.Contains(stats, " deaths=2 ") {
		t.Fatalf("SIGKILL never observed: %s", stats)
	}
	if strings.Contains(stats, " mismatches=0 ") || strings.Contains(stats, " healrounds=0 ") {
		t.Fatalf("corruption never exercised: %s", stats)
	}

	cmd := exec.Command(cliPath(t, "cellnpdp"), "cluster", "-n", "704",
		"-cluster-workers", "2", "-faultrate", "1", "-faultseed", "7", "-timeout", "2m")
	out2, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("corrupted run with healing off succeeded:\n%s", out2)
	}
	if !strings.Contains(string(out2), "block seal mismatch") {
		t.Fatalf("failure lacks the typed seal-mismatch identity:\n%s", out2)
	}
}

// TestCLIClusterResume interrupts a checkpointing loopback cluster run
// with SIGTERM, then resumes it across processes and verifies identity.
func TestCLIClusterResume(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "cluster.npck")
	out := runCLI(t, "cellnpdp", "cluster", "-n", "704", "-cluster-workers", "2",
		"-checkpoint", ck, "-checkpoint-every", "4", "-timeout", "2m")
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint written: %v\n%s", err, out)
	}
	out2 := runCLI(t, "cellnpdp", "cluster", "-n", "704", "-cluster-workers", "0",
		"-checkpoint", ck, "-resume", "-verify", "-timeout", "2m")
	if !strings.Contains(out2, "verified against serial engine: identical") {
		t.Fatalf("resumed run not verified identical:\n%s", out2)
	}
	stats := clusterStatsLine(t, out2)
	if !strings.Contains(stats, " resumed=36 ") {
		t.Fatalf("full resume did not pre-complete all 36 tasks: %s", stats)
	}
}

// clusterStatsLine extracts the parseable "cluster: tasks=..." line.
func clusterStatsLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "cluster: tasks=") {
			return line
		}
	}
	t.Fatalf("no cluster stats line in output:\n%s", out)
	return ""
}
