package cellnpdp

import (
	"bytes"
	"math"
	"testing"

	"cellnpdp/internal/kernel"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/tableio"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/zuker"
)

// FuzzStep4x4 cross-checks the production computing-block step against a
// straightforward scalar evaluation on arbitrary inputs, including
// negatives, denormals and huge values.
func FuzzStep4x4(f *testing.F) {
	f.Add(float32(1), float32(2), float32(3), uint16(0))
	f.Add(float32(-1e30), float32(1e30), float32(0.5), uint16(7))
	f.Add(float32(1e-38), float32(-1e-38), float32(1e9), uint16(255))
	f.Fuzz(func(t *testing.T, a0, b0, c0 float32, mix uint16) {
		if math.IsNaN(float64(a0)) || math.IsNaN(float64(b0)) || math.IsNaN(float64(c0)) {
			t.Skip("NaN breaks min's trichotomy; the engines never produce it")
		}
		const stride = 4
		var a, b, c1, c2 [16]float32
		for i := 0; i < 16; i++ {
			// Derive varied lanes deterministically from the seeds.
			s := float32(int(mix>>(uint(i)%16))&3 - 1)
			a[i] = a0 + s*float32(i)
			b[i] = b0 - s*float32(i*i)
			c1[i] = c0 + float32(i%5)
			c2[i] = c1[i]
		}
		kernel.Step4x4(c1[:], a[:], b[:], stride)
		for r := 0; r < 4; r++ {
			for col := 0; col < 4; col++ {
				v := c2[r*stride+col]
				for k := 0; k < 4; k++ {
					if w := a[r*stride+k] + b[k*stride+col]; w < v {
						v = w
					}
				}
				if c1[r*stride+col] != v {
					t.Fatalf("cell (%d,%d): kernel %v vs scalar %v", r, col, c1[r*stride+col], v)
				}
			}
		}
	})
}

// FuzzTableIO checks that the reader never panics on arbitrary bytes and
// that valid files round-trip.
func FuzzTableIO(f *testing.F) {
	src := tri.NewRowMajor[float32](5)
	tri.Fill[float32](src, func(i, j int) float32 { return float32(i*10 + j) })
	var buf bytes.Buffer
	if err := tableio.Write(&buf, src); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("NPDPgarbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := tableio.Read[float32](bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must round-trip to identical bytes.
		var out bytes.Buffer
		if err := tableio.Write(&out, m); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("accepted file did not round-trip")
		}
	})
}

// FuzzCheckpointRoundTrip checks the resilience snapshot reader on
// arbitrary bytes: corrupt or truncated snapshots must error — never
// panic — and anything accepted must satisfy the format's invariants
// (consistent geometry, appliable blocks).
func FuzzCheckpointRoundTrip(f *testing.F) {
	const n, tile = 20, 8
	tt := tri.NewTiled[float32](n, tile)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			tt.Set(i, j, float32(i*100+j))
		}
	}
	meta := resilience.Meta{N: n, Tile: tile, SchedSide: 1, Tasks: 6, ElemBytes: 4}
	done := []bool{true, false, false, true, false, false}
	var buf bytes.Buffer
	if err := resilience.WriteCheckpoint(&buf, meta, done, tt, [][2]int{{0, 0}, {1, 1}}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	valid := buf.Bytes()
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(truncated)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("NPCKgarbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := resilience.ReadCheckpoint[float32](bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := ck.Matches(ck.Meta.N, ck.Meta.Tile, ck.Meta.SchedSide); err != nil {
			t.Fatalf("accepted snapshot fails its own geometry: %v", err)
		}
		if ck.Meta.N > 1<<12 {
			t.Skip("applying huge accepted geometries would just test the allocator")
		}
		fresh := tri.NewTiled[float32](ck.Meta.N, ck.Meta.Tile)
		if err := ck.Apply(fresh); err != nil {
			t.Fatalf("accepted snapshot failed to apply: %v", err)
		}
	})
}

// FuzzSealTable checks the block-seal codec on arbitrary bytes: a
// truncated, bit-flipped, or record-reordered seal stream must never
// verify — the reader either rejects it or decodes a table whose
// re-encoding is byte-identical canonical form. Either way it must not
// panic.
func FuzzSealTable(f *testing.F) {
	st := resilience.NewSealTable(12)
	st.Seal(0, 0xdeadbeef)
	st.Seal(5, 0)
	st.Seal(11, 0x12345678)
	var buf bytes.Buffer
	if err := st.WriteSeals(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(append([]byte(nil), valid[:len(valid)-3]...)) // truncated checksum
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	reordered := append([]byte(nil), valid...)
	if len(reordered) > 30 {
		// Swap the first two 8-byte records.
		for i := 14; i < 22; i++ {
			reordered[i], reordered[i+8] = reordered[i+8], reordered[i]
		}
	}
	f.Add(reordered)
	f.Add([]byte("NPSLgarbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := resilience.ReadSeals(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must re-encode to exactly the bytes read:
		// the format is canonical, so two distinct byte streams can
		// never decode to the same seal set.
		var out bytes.Buffer
		if err := got.WriteSeals(&out); err != nil {
			t.Fatalf("re-encoding accepted seals failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("accepted seal stream did not round-trip canonically")
		}
	})
}

// FuzzFoldRNA checks the folding pipeline end to end on arbitrary ASCII:
// parse errors are fine, but accepted sequences must fold, trace back and
// validate.
func FuzzFoldRNA(f *testing.F) {
	f.Add("GGGAAAACCC")
	f.Add("acguACGUtt")
	f.Add("GCGCGCGCGAAAACGCGCGCGC")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 200 {
			t.Skip("bounded size keeps the fuzz loop fast")
		}
		seq, err := zuker.ParseSeq(s)
		if err != nil {
			return
		}
		res, err := zuker.Fold(seq, zuker.Options{Engine: zuker.EngineSerial})
		if err != nil {
			t.Fatalf("fold of valid sequence failed: %v", err)
		}
		if res.MFE > 0 {
			t.Fatalf("positive MFE %g", res.MFE)
		}
		st, err := res.Traceback()
		if err != nil {
			t.Fatalf("traceback failed: %v", err)
		}
		if err := st.Validate(seq); err != nil {
			t.Fatal(err)
		}
	})
}
