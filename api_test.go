package cellnpdp

import (
	"math/rand"
	"strings"
	"testing"
)

// buildRandom fills a table with a seeded chain instance.
func buildRandom(t *testing.T, n int, seed int64) *Table[float32] {
	t.Helper()
	tbl, err := NewTable[float32](n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i+1 < n; i++ {
		if err := tbl.Set(i, i+1, float32(1+rng.Float64()*99)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestAllEnginesBitIdentical(t *testing.T) {
	for _, n := range []int{16, 100, 256} {
		ref := buildRandom(t, n, int64(n))
		if _, err := Solve(ref, Options{Engine: Serial}); err != nil {
			t.Fatal(err)
		}
		for _, eng := range []Engine{Tiled, Parallel, Cell} {
			got := buildRandom(t, n, int64(n))
			res, err := Solve(got, Options{Engine: eng, Workers: 4})
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, eng, err)
			}
			if res.Engine != eng {
				t.Errorf("result engine %v, want %v", res.Engine, eng)
			}
			for j := 0; j < n; j++ {
				for i := 0; i <= j; i++ {
					a, _ := ref.At(i, j)
					b, _ := got.At(i, j)
					if a != b {
						t.Fatalf("n=%d %v: cell (%d,%d) differs: %v vs %v", n, eng, i, j, a, b)
					}
				}
			}
		}
	}
}

func TestSolveFloat64(t *testing.T) {
	const n = 64
	mk := func() *Table[float64] {
		tbl, err := NewTable[float64](n)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ {
				tbl.Set(i, j, rng.Float64()*100)
			}
		}
		return tbl
	}
	ref := mk()
	Solve(ref, Options{Engine: Serial})
	got := mk()
	if _, err := Solve(got, Options{Engine: Cell, Workers: 8}); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			a, _ := ref.At(i, j)
			b, _ := got.At(i, j)
			if a != b {
				t.Fatalf("f64 cell (%d,%d) differs", i, j)
			}
		}
	}
}

func TestCellEngineReportsModel(t *testing.T) {
	tbl := buildRandom(t, 200, 1)
	res, err := Solve(tbl, Options{Engine: Cell, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.ModeledSeconds <= 0 {
		t.Error("no modeled seconds from Cell engine")
	}
	if res.DMABytes <= 0 {
		t.Error("no DMA bytes from Cell engine")
	}
	if res.Relaxations <= 0 {
		t.Error("no relaxation count")
	}
}

func TestSerialResultCounts(t *testing.T) {
	tbl := buildRandom(t, 50, 2)
	res, err := Solve(tbl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(50) * (50*50 - 1) / 6
	if res.Relaxations != want {
		t.Errorf("relaxations = %d, want %d", res.Relaxations, want)
	}
	if res.ModeledSeconds != 0 || res.DMABytes != 0 {
		t.Error("serial engine reported Cell-only fields")
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable[float32](0); err == nil {
		t.Error("n=0 accepted")
	}
	tbl, _ := NewTable[float32](8)
	if err := tbl.Set(3, 2, 1); err == nil {
		t.Error("lower-triangle Set accepted")
	}
	if _, err := tbl.At(-1, 2); err == nil {
		t.Error("negative At accepted")
	}
	if err := tbl.Set(2, 8, 1); err == nil {
		t.Error("out-of-range Set accepted")
	}
	if tbl.Len() != 8 {
		t.Errorf("Len = %d", tbl.Len())
	}
	v, err := tbl.At(2, 2)
	if err != nil || v != 0 {
		t.Errorf("diagonal = %v, want 0", v)
	}
	v, _ = tbl.At(2, 5)
	if v != Inf[float32]() {
		t.Errorf("unset cell = %v, want Inf", v)
	}
}

func TestSolveRejectsBad(t *testing.T) {
	if _, err := Solve[float32](nil, Options{}); err == nil {
		t.Error("nil table accepted")
	}
	tbl, _ := NewTable[float32](8)
	if _, err := Solve(tbl, Options{Engine: Engine(42)}); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := Solve(tbl, Options{BlockBytes: 8}); err == nil {
		t.Error("absurd block budget accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	tbl := buildRandom(t, 10, 3)
	c := tbl.Clone()
	c.Set(0, 5, -1)
	v, _ := tbl.At(0, 5)
	if v == -1 {
		t.Error("Clone shares storage")
	}
}

func TestEngineString(t *testing.T) {
	for e, want := range map[Engine]string{Serial: "serial", Tiled: "tiled", Parallel: "parallel", Cell: "cell"} {
		if e.String() != want {
			t.Errorf("%v", e)
		}
	}
	if !strings.Contains(Engine(9).String(), "9") {
		t.Error("unknown engine string")
	}
}

func TestFoldRNAQuickstart(t *testing.T) {
	res, err := FoldRNA("GGGAAAACCC", FoldOptions{Engine: Serial})
	if err != nil {
		t.Fatal(err)
	}
	if res.DotBracket != "(((....)))" {
		t.Errorf("structure %q", res.DotBracket)
	}
	if res.MFE >= 0 {
		t.Errorf("MFE %g", res.MFE)
	}
	if len(res.Pairs) != 3 {
		t.Errorf("pairs %v", res.Pairs)
	}
}

func TestFoldRNAEnginesAgree(t *testing.T) {
	seq := "GCGCUUCGAAAGCGCAAUUGCACGGCGGAUUACGCGUAAGCGUUAACGCC"
	ref, err := FoldRNA(seq, FoldOptions{Engine: Serial})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []Engine{Tiled, Parallel, Cell} {
		got, err := FoldRNA(seq, FoldOptions{Engine: eng, Workers: 4})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if got.MFE != ref.MFE {
			t.Errorf("%v MFE %g != %g", eng, got.MFE, ref.MFE)
		}
	}
	if _, err := FoldRNA("XYZ", FoldOptions{}); err == nil {
		t.Error("invalid sequence accepted")
	}
	if _, err := FoldRNA(seq, FoldOptions{Engine: Engine(42)}); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestMaxBasePairsAPI(t *testing.T) {
	// GGGAAAACCC folds into three nested GC pairs; with minSpan 3 the
	// count is exactly 3 (Nussinov agrees with the MFE structure here).
	res, err := MaxBasePairs("GGGAAAACCC", 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 3 {
		t.Errorf("pairs %d, want 3", res.Pairs)
	}
	if res.Sequence != "GGGAAAACCC" {
		t.Errorf("sequence %q", res.Sequence)
	}
	// T normalizes to U; lattice answer is unchanged.
	res2, err := MaxBasePairs("gggaaaaccc", 3)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Pairs != res.Pairs {
		t.Errorf("case-normalized pairs %d != %d", res2.Pairs, res.Pairs)
	}
	if _, err := MaxBasePairs("XYZ", 0); err == nil {
		t.Error("invalid sequence accepted")
	}
	if _, err := MaxBasePairs("", 0); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestMatrixChainAPI(t *testing.T) {
	cost, paren, err := MatrixChain([]int{30, 35, 15, 5, 10, 20, 25}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 15125 {
		t.Errorf("cost = %d", cost)
	}
	if !strings.Contains(paren, "A0") {
		t.Errorf("paren = %q", paren)
	}
	if _, _, err := MatrixChain([]int{3}, 2); err == nil {
		t.Error("too-short dims accepted")
	}
}

func TestOptimalBSTAPI(t *testing.T) {
	cost, depths, err := OptimalBST([]float64{0.1, 0.8, 0.1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if depths[1] != 1 {
		t.Errorf("hot key depth = %d", depths[1])
	}
	if cost <= 0 {
		t.Errorf("cost = %g", cost)
	}
	if _, _, err := OptimalBST(nil, 2); err == nil {
		t.Error("empty keys accepted")
	}
}

func TestFoldRNAConstraints(t *testing.T) {
	free, err := FoldRNA("GGGAAAACCC", FoldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := FoldRNA("GGGAAAACCC", FoldOptions{Constraints: "x........."})
	if err != nil {
		t.Fatal(err)
	}
	if res.DotBracket[0] != '.' {
		t.Errorf("constrained base paired: %s", res.DotBracket)
	}
	if res.MFE < free.MFE {
		t.Error("constraint improved MFE")
	}
	if _, err := FoldRNA("GGGAAAACCC", FoldOptions{Constraints: "??"}); err == nil {
		t.Error("bad constraint line accepted")
	}
}

func TestFoldRNAFull(t *testing.T) {
	res, err := FoldRNAFull("GGGGGAAGGGGAAAACCCCAAGGGGAAAACCCCAACCCCC")
	if err != nil {
		t.Fatal(err)
	}
	if res.MFE >= 0 || len(res.Pairs) == 0 {
		t.Errorf("full fold: MFE %g, %d pairs", res.MFE, len(res.Pairs))
	}
	// The full model can only do as well or better than the simplified one.
	simple, err := FoldRNA(res.Sequence, FoldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MFE > simple.MFE+1e-4 {
		t.Errorf("full MFE %g worse than simplified %g", res.MFE, simple.MFE)
	}
	if _, err := FoldRNAFull("NOPE!"); err == nil {
		t.Error("invalid sequence accepted")
	}
}

func TestParseCYKAPI(t *testing.T) {
	g := grammarBalancedParens()
	lp, ok, err := ParseCYK(g, []byte("(())"), 0)
	if err != nil || !ok {
		t.Fatalf("parse failed: %v %v", ok, err)
	}
	if lp >= 0 {
		t.Errorf("log-prob = %g", lp)
	}
	if _, ok, _ := ParseCYK(g, []byte(")("), 2); ok {
		t.Error("unbalanced input recognized")
	}
	if _, _, err := ParseCYK(g, nil, 2); err == nil {
		t.Error("empty input accepted")
	}
}

// grammarBalancedParens mirrors apps.BalancedParens through the exported
// aliases, proving the public types suffice to define a grammar.
func grammarBalancedParens() *Grammar {
	return &Grammar{
		Symbols: 4,
		Binary: []BinaryRule{
			{A: 0, B: 0, C: 0, W: -1},
			{A: 0, B: 2, C: 1, W: -1},
			{A: 0, B: 2, C: 3, W: -1},
			{A: 1, B: 0, C: 3, W: 0},
		},
		Lexical: []LexicalRule{
			{A: 2, T: '(', W: 0},
			{A: 3, T: ')', W: 0},
		},
	}
}

func TestMinWeightTriangulationAPI(t *testing.T) {
	w, tris, err := MinWeightTriangulation([]Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 2 || w <= 0 {
		t.Errorf("weight %g, triangles %v", w, tris)
	}
	if _, _, err := MinWeightTriangulation([]Point{{X: 0, Y: 0}}, 2); err == nil {
		t.Error("degenerate polygon accepted")
	}
}

func TestSingleChipOption(t *testing.T) {
	tbl := buildRandom(t, 1024, 6)
	blade, err := Solve(tbl.Clone(), Options{Engine: Cell, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Solve(tbl.Clone(), Options{Engine: Cell, Workers: 16, SingleChip: true})
	if err != nil {
		t.Fatal(err)
	}
	// A single chip caps at 8 SPEs and one memory channel: same answer,
	// more modeled time.
	if single.ModeledSeconds <= blade.ModeledSeconds {
		t.Errorf("single chip (%g) not slower than the blade (%g)", single.ModeledSeconds, blade.ModeledSeconds)
	}
}
