package cellnpdp

import (
	"path/filepath"
	"strings"
	"testing"
)

func assertTablesEqual(t *testing.T, ref, got *Table[float32], label string) {
	t.Helper()
	n := ref.Len()
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			a, _ := ref.At(i, j)
			b, _ := got.At(i, j)
			if a != b {
				t.Fatalf("%s: cell (%d,%d) differs: %v vs %v", label, i, j, a, b)
			}
		}
	}
}

func TestPagedSolveBitIdenticalToSerial(t *testing.T) {
	const n = 256
	ref := buildRandom(t, n, 77)
	if _, err := Solve(ref, Options{Engine: Serial}); err != nil {
		t.Fatal(err)
	}
	for _, eng := range []Engine{Tiled, Parallel} {
		got := buildRandom(t, n, 77)
		// Small memory blocks (16×16 tiles → 136 blocks at n=256) plus a
		// budget well below the full table footprint force real paging.
		est, err := EstimateSolve[float32](n, Options{Engine: eng, BlockBytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(got, Options{Engine: eng, Workers: 2, BlockBytes: 1024, MemoryBudget: est.TableBytes / 4})
		if err != nil {
			t.Fatalf("%v paged: %v", eng, err)
		}
		if !res.Paged || res.PagerStats == nil {
			t.Fatalf("%v: result not marked paged: %+v", eng, res)
		}
		if res.PagerStats.SpilledBlocks == 0 {
			t.Errorf("%v: budget %d below table %d but nothing spilled", eng, est.TableBytes/4, est.TableBytes)
		}
		assertTablesEqual(t, ref, got, eng.String()+" paged")
	}
}

func TestPagedSolveHealsInjectedTornWrites(t *testing.T) {
	const n = 192
	ref := buildRandom(t, n, 9)
	if _, err := Solve(ref, Options{Engine: Serial}); err != nil {
		t.Fatal(err)
	}
	got := buildRandom(t, n, 9)
	res, err := Solve(got, Options{
		Engine: Parallel, Workers: 2,
		BlockBytes:     1024,
		MemoryBudget:   16 * 1024,
		DiskFaultRate:  0.05,
		DiskFaultSeed:  3,
		DiskFaultKinds: "torn,flip",
	})
	if err != nil {
		t.Fatalf("paged solve under torn writes: %v", err)
	}
	assertTablesEqual(t, ref, got, "paged+torn")
	if res.PagerStats.FaultedPages > 0 && res.PagerStats.PageHeals == 0 {
		t.Errorf("faults fired (%d) but nothing healed: %+v", res.PagerStats.FaultedPages, res.PagerStats)
	}
}

func TestPagedSolveResumesFromSpill(t *testing.T) {
	const n = 128
	ref := buildRandom(t, n, 4)
	if _, err := Solve(ref, Options{Engine: Serial}); err != nil {
		t.Fatal(err)
	}
	spill := filepath.Join(t.TempDir(), "solve.npsp")
	first := buildRandom(t, n, 4)
	if _, err := Solve(first, Options{Engine: Parallel, Workers: 2, BlockBytes: 1024, MemoryBudget: 16 * 1024, SpillPath: spill}); err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, ref, first, "first paged run")
	// Second run resumes from the fully-solved spill: every task is
	// recovered, nothing recomputes, and the answer still matches.
	second := buildRandom(t, n, 4)
	res, err := Solve(second, Options{Engine: Parallel, Workers: 2, BlockBytes: 1024, MemoryBudget: 16 * 1024, SpillPath: spill, ResumeSpill: true})
	if err != nil {
		t.Fatalf("resume from solved spill: %v", err)
	}
	if res.ResumedTasks == 0 {
		t.Error("no tasks recovered from a fully-solved spill file")
	}
	assertTablesEqual(t, ref, second, "resumed paged run")
}

func TestPagedSolveRejectsBadCombos(t *testing.T) {
	tbl := buildRandom(t, 32, 1)
	cases := []struct {
		opts Options
		want string
	}{
		{Options{Engine: Serial, MemoryBudget: 1 << 20}, "Tiled and Parallel"},
		{Options{Engine: Cell, MemoryBudget: 1 << 20}, "Tiled and Parallel"},
		{Options{Engine: Parallel, SpillPath: "x.npsp"}, "positive MemoryBudget"},
		{Options{Engine: Parallel, ResumeSpill: true}, "positive MemoryBudget"},
		{Options{Engine: Parallel, MemoryBudget: 1 << 20, ResumeSpill: true}, "requires SpillPath"},
		{Options{Engine: Parallel, MemoryBudget: 1 << 20, CheckpointPath: "c.ckpt"}, "incompatible"},
		{Options{Engine: Parallel, MemoryBudget: 1 << 20, ResumePath: "c.ckpt"}, "incompatible"},
		{Options{Engine: Parallel, MemoryBudget: 1 << 20, FaultRate: 0.5}, "incompatible"},
		{Options{Engine: Parallel, MemoryBudget: 1 << 20, AuditEvery: 4}, "incompatible"},
		{Options{Engine: Parallel, DiskFaultRate: 0.5}, "requires MemoryBudget"},
		{Options{Engine: Parallel, MemoryBudget: 1 << 20, DiskFaultKinds: "bogus"}, "unknown disk fault"},
	}
	for _, tc := range cases {
		_, err := Solve(tbl.Clone(), tc.opts)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("opts %+v: error %v, want substring %q", tc.opts, err, tc.want)
		}
	}
}

func TestEstimateSolveReportsSpill(t *testing.T) {
	est, err := EstimateSolve[float32](512, Options{Engine: Parallel})
	if err != nil {
		t.Fatal(err)
	}
	if est.SpillFileBytes <= est.TableBytes {
		t.Errorf("spill file %d B not larger than table %d B (two regions + header)", est.SpillFileBytes, est.TableBytes)
	}
	budget := est.TableBytes / 8
	capped, err := EstimateSolve[float32](512, Options{Engine: Parallel, MemoryBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if capped.FootprintBytes >= est.FootprintBytes {
		t.Errorf("budgeted footprint %d not below full footprint %d", capped.FootprintBytes, est.FootprintBytes)
	}
}
