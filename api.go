// Package cellnpdp is a Go reproduction of "Efficient Nonserial Polyadic
// Dynamic Programming on the Cell Processor" (Liu, Wang, Jiang, Li, Yang —
// IPDPS 2011).
//
// It solves the NPDP recurrence
//
//	d[i][j] = min(d[i][j], d[i][k] + d[k][j])   for i ≤ k < j
//
// over the upper triangle of an n-point table, with four interchangeable
// engines:
//
//   - Serial: the original Figure 1 loop (the correctness reference).
//   - Tiled: the serial tiled algorithm on the paper's block-sequential
//     "new data layout", using the two-stage memory-block procedure with
//     4×4 computing blocks.
//   - Parallel: the tier-2 task-queue procedure on real goroutines —
//     the fastest way to actually solve big instances on the host.
//   - Cell: the full CellNPDP algorithm executed on a simulated IBM QS20
//     Cell blade (SPE local stores, asynchronous DMA, dual-issue pipeline
//     cost model), returning both the answer and the modeled hardware
//     time and DMA traffic.
//
// Applications built on the engines are exposed too: RNA secondary-
// structure prediction (FoldRNA — the Zuker bifurcation layer the paper
// targets), optimal matrix-chain parenthesization and optimal binary
// search trees.
package cellnpdp

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"cellnpdp/internal/cellsim"
	"cellnpdp/internal/npdp"
	"cellnpdp/internal/pager"
	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/pipeline"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// Elem constrains table element types: float32 (the paper's single
// precision) or float64 (double).
type Elem = semiring.Elem

// Inf is the "no solution yet" initial value for unset cells.
func Inf[E Elem]() E { return semiring.Inf[E]() }

// Engine selects the solver backend.
type Engine int

// The available engines.
const (
	Serial Engine = iota
	Tiled
	Parallel
	Cell
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case Serial:
		return "serial"
	case Tiled:
		return "tiled"
	case Parallel:
		return "parallel"
	case Cell:
		return "cell"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// Options configures Solve.
type Options struct {
	// Engine selects the backend; the zero value is Serial.
	Engine Engine
	// Workers is the worker count for Parallel (goroutines) and Cell
	// (SPEs, ≤ 16) — the paper's SPE count on the Cell and its CPU core
	// count in Table III / Figure 10(b). Defaults to GOMAXPROCS, capped
	// at 16 for Cell. The Parallel engine dispatches tasks through a
	// lock-free ready queue and computes stage 1 with register-blocked
	// panel kernels (a float32 fast path when the element type allows).
	Workers int
	// BlockBytes is the memory-block budget the tile side is derived
	// from; defaults to the paper's 32 KB.
	BlockBytes int
	// SchedSide is the scheduling-block side in memory blocks; defaults
	// to 1 (one task per memory block).
	SchedSide int
	// SingleChip runs the Cell engine on a one-chip, 8-SPE machine
	// instead of the dual-Cell QS20 blade.
	SingleChip bool
	// MaxRetries bounds per-task retries of transient failures in the
	// Parallel engine (exponential backoff, 1ms base). 0 never retries.
	MaxRetries int
	// FaultRate, when positive, turns on the deterministic fault-injection
	// harness in the Parallel engine: each task attempt independently
	// fails (as a retryable transient error) with this probability.
	FaultRate float64
	// FaultSeed seeds the injection plan; runs with the same seed fault
	// the same (task, attempt) pairs regardless of worker interleaving.
	FaultSeed int64
	// FaultKinds selects the faults injected, comma-separated from
	// "error", "panic", "delay", "corrupt"; empty means "error" (the
	// retryable default). "corrupt" silently flips one bit in a completed
	// memory block — block sealing (implied by selecting it) turns that
	// into a detected corruption, and Heal into a recovered one. The Cell
	// engine honors only "corrupt".
	FaultKinds string
	// Heal enables self-healing in the Parallel and Cell engines: every
	// completed memory block is sealed with a CRC32C digest, audits
	// re-verify the seals, and a mismatch triggers poisoned-cone
	// recompute (the corrupted block's task plus its transitive
	// successors) instead of a failed solve. Without Heal a detected
	// corruption is an error — never a silently wrong answer.
	Heal bool
	// HealAttempts bounds poisoned-cone recompute rounds; 0 uses the
	// engine default.
	HealAttempts int
	// AuditEvery makes the Parallel engine re-verify all block seals
	// every AuditEvery task executions (the online audit, which catches
	// corruption mid-solve); 0 audits post-solve only. Implies sealing.
	AuditEvery int
	// CheckpointPath, when non-empty, makes the Parallel engine
	// periodically snapshot completed work (and always snapshot on
	// failure) to this file for later resume.
	CheckpointPath string
	// CheckpointEvery is the snapshot period in completed tasks; 0 means
	// 16.
	CheckpointEvery int
	// ResumePath, when non-empty, resumes a Parallel solve from a
	// checkpoint written by an earlier run with identical geometry:
	// completed tasks' blocks are restored and only the remainder
	// executes.
	ResumePath string
	// NoFallback disables the Parallel→Tiled graceful degradation, so a
	// parallel compute failure surfaces instead of being recovered.
	NoFallback bool
	// MemoryBudget, when positive, runs the Tiled and Parallel engines
	// out of core: the NDL table lives in a crash-consistent spill file
	// and only a working set of roughly MemoryBudget bytes of blocks
	// stays resident (clamped up to the minimum the worker count needs).
	// The budget is soft — disk failures degrade to residency growth
	// rather than data loss. Incompatible with CheckpointPath/ResumePath
	// (the committed spill index is the checkpoint), FaultRate, and
	// AuditEvery; Serial and Cell reject it.
	MemoryBudget int64
	// SpillPath locates the spill data file (its index rides beside it at
	// SpillPath+".idx"). Empty means a private temp file removed after
	// the solve; a named path persists across SIGKILL for ResumeSpill.
	// Requires MemoryBudget > 0.
	SpillPath string
	// ResumeSpill resumes a paged solve from an existing spill file at
	// SpillPath: blocks recovered from the committed index are trusted
	// (CRC-verified on page-in) and only the remainder is recomputed.
	ResumeSpill bool
	// DiskFaultRate, when positive, turns on the deterministic disk-fault
	// injector on the pager's spill I/O (the out-of-core counterpart of
	// FaultRate). Requires MemoryBudget > 0.
	DiskFaultRate float64
	// DiskFaultSeed seeds the disk-fault plan.
	DiskFaultSeed int64
	// DiskFaultKinds selects injected disk faults, comma-separated from
	// "eio", "torn", "flip", "enospc"; empty means all four.
	DiskFaultKinds string
	// Logf, when non-nil, receives operational messages (degradation
	// reasons). Nil is silent; the reason is still recorded in the
	// Result.
	Logf func(format string, args ...any)
}

// Result reports a solve.
type Result struct {
	// Engine that ran.
	Engine Engine
	// Relaxations is the scalar-equivalent relaxation count performed.
	Relaxations int64
	// WallSeconds is the measured host wall-clock time of the solve.
	WallSeconds float64
	// ModeledSeconds is the simulated QS20 execution time (Cell engine
	// only, 0 otherwise).
	ModeledSeconds float64
	// DMABytes is the simulated local-store traffic (Cell engine only).
	DMABytes int64
	// Degraded reports that the Parallel engine failed and the solve was
	// recovered by the serial Tiled engine; DegradedReason is the
	// parallel failure that forced the switch.
	Degraded       bool
	DegradedReason string
	// ResumedTasks is the number of scheduler tasks restored from the
	// checkpoint instead of recomputed (Parallel resume only).
	ResumedTasks int
	// CorruptBlocks is the number of block-seal mismatches audits
	// detected (sealing engines only).
	CorruptBlocks int
	// HealRounds is the number of poisoned-cone recompute rounds run.
	HealRounds int
	// RecomputedTasks is the total scheduler tasks re-dispatched by
	// healing across all rounds.
	RecomputedTasks int
	// HealFallback reports that heal rounds were exhausted and the solve
	// restarted once from the pristine snapshot.
	HealFallback bool
	// Paged reports the solve ran out of core through the block pager;
	// PagerStats then carries the disk-traffic and recovery counters
	// (bytes spilled and fetched, faulted pages, heals, ENOSPC
	// degradations).
	Paged      bool
	PagerStats *pager.Stats
}

// Table is an n-point upper-triangular DP table. Cells (i, j) with
// 0 ≤ i ≤ j < n are stored; unset cells start at Inf and the diagonal
// at 0 (the ⊗ identity, so d[i][i]+d[i][j] never wins spuriously).
type Table[E Elem] struct {
	rm *tri.RowMajor[E]
}

// NewTable allocates an n-point table.
func NewTable[E Elem](n int) (*Table[E], error) {
	if err := tri.CheckSize(n); err != nil {
		return nil, err
	}
	rm := tri.NewRowMajor[E](n)
	for i := 0; i < n; i++ {
		rm.Set(i, i, 0)
	}
	return &Table[E]{rm: rm}, nil
}

// Len returns the problem size n.
func (t *Table[E]) Len() int { return t.rm.Len() }

// At returns cell (i, j); i ≤ j required.
func (t *Table[E]) At(i, j int) (E, error) {
	if err := tri.CheckCell(t.rm.Len(), i, j); err != nil {
		var zero E
		return zero, err
	}
	return t.rm.At(i, j), nil
}

// Set stores v into cell (i, j); i ≤ j required.
func (t *Table[E]) Set(i, j int, v E) error {
	if err := tri.CheckCell(t.rm.Len(), i, j); err != nil {
		return err
	}
	t.rm.Set(i, j, v)
	return nil
}

// Clone returns a deep copy.
func (t *Table[E]) Clone() *Table[E] { return &Table[E]{rm: t.rm.Clone()} }

// precisionOf maps the element type to the paper's precision enum.
func precisionOf[E Elem]() npdp.Precision {
	var e E
	if _, ok := any(e).(float64); ok {
		return npdp.Double
	}
	return npdp.Single
}

// cbStepCycles returns the modeled computing-block step cost for E.
func cbStepCycles[E Elem]() float64 {
	if precisionOf[E]() == npdp.Double {
		return pipeline.CBStepCyclesDP()
	}
	return pipeline.CBStepCyclesSP()
}

// Solve runs the NPDP recurrence in place on t with the selected engine.
// All engines produce bit-identical tables.
func Solve[E Elem](t *Table[E], opts Options) (*Result, error) {
	return SolveCtx(context.Background(), t, opts)
}

// SolveCtx is Solve under a context: cancellation and deadlines are
// honored by every engine at task-dispatch granularity (per column for
// Serial, per memory block for Tiled, per scheduler task for Parallel
// and Cell). A cancelled solve returns ctx's error and leaves the table
// partially solved; with a checkpoint configured, the completed portion
// is on disk for resume.
func SolveCtx[E Elem](ctx context.Context, t *Table[E], opts Options) (*Result, error) {
	if t == nil || t.rm == nil {
		return nil, fmt.Errorf("cellnpdp: nil table")
	}
	// Worker validation is uniform across all four engines: negative
	// counts are a configuration error everywhere, including Serial
	// (where the field is otherwise unused), so a typo never silently
	// selects a default.
	workers := opts.Workers
	if workers < 0 {
		return nil, fmt.Errorf("cellnpdp: Workers must be non-negative, got %d (engine %v)", workers, opts.Engine)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.FaultRate < 0 || opts.FaultRate > 1 {
		return nil, fmt.Errorf("cellnpdp: FaultRate must be in [0, 1], got %g", opts.FaultRate)
	}
	if opts.HealAttempts < 0 {
		return nil, fmt.Errorf("cellnpdp: HealAttempts must be non-negative, got %d", opts.HealAttempts)
	}
	if opts.AuditEvery < 0 {
		return nil, fmt.Errorf("cellnpdp: AuditEvery must be non-negative, got %d", opts.AuditEvery)
	}
	faultKinds, err := resilience.ParseFaultKinds(opts.FaultKinds)
	if err != nil {
		return nil, fmt.Errorf("cellnpdp: %w", err)
	}
	diskFaultKinds, err := pager.ParseDiskFaultKinds(opts.DiskFaultKinds)
	if err != nil {
		return nil, fmt.Errorf("cellnpdp: %w", err)
	}
	paged := opts.MemoryBudget != 0 || opts.SpillPath != "" || opts.ResumeSpill
	if paged {
		if opts.MemoryBudget <= 0 {
			return nil, fmt.Errorf("cellnpdp: SpillPath/ResumeSpill require a positive MemoryBudget, got %d", opts.MemoryBudget)
		}
		if opts.Engine != Tiled && opts.Engine != Parallel {
			return nil, fmt.Errorf("cellnpdp: MemoryBudget supports the Tiled and Parallel engines, not %v", opts.Engine)
		}
		if opts.CheckpointPath != "" || opts.ResumePath != "" {
			return nil, fmt.Errorf("cellnpdp: MemoryBudget is incompatible with CheckpointPath/ResumePath — the committed spill index is the checkpoint (resume with ResumeSpill)")
		}
		if opts.FaultRate > 0 || opts.AuditEvery > 0 {
			return nil, fmt.Errorf("cellnpdp: MemoryBudget is incompatible with FaultRate/AuditEvery (use DiskFaultRate; page-in CRC checks replace the seal audit)")
		}
		if opts.ResumeSpill && opts.SpillPath == "" {
			return nil, fmt.Errorf("cellnpdp: ResumeSpill requires SpillPath")
		}
	}
	if opts.DiskFaultRate < 0 || opts.DiskFaultRate > 1 {
		return nil, fmt.Errorf("cellnpdp: DiskFaultRate must be in [0, 1], got %g", opts.DiskFaultRate)
	}
	if opts.DiskFaultRate > 0 && !paged {
		return nil, fmt.Errorf("cellnpdp: DiskFaultRate requires MemoryBudget (there is no spill I/O to fault)")
	}
	blockBytes := opts.BlockBytes
	if blockBytes <= 0 {
		blockBytes = 32 * 1024
	}
	schedSide := opts.SchedSide
	if schedSide <= 0 {
		schedSide = 1
	}
	prec := precisionOf[E]()
	tile, err := npdp.DefaultTile(blockBytes, prec)
	if err != nil {
		return nil, err
	}
	res := &Result{Engine: opts.Engine}
	start := time.Now()
	switch opts.Engine {
	case Serial:
		relax, err := npdp.SolveSerialCtx(ctx, t.rm)
		if err != nil {
			return nil, err
		}
		res.Relaxations = relax
	case Tiled:
		if paged {
			relax, err := solvePaged(ctx, t, res, tile, 1, opts, diskFaultKinds)
			if err != nil {
				return nil, err
			}
			res.Relaxations = relax
			break
		}
		tt := tri.ToTiled(t.rm, tile)
		st, err := npdp.SolveTiledCtx(ctx, tt)
		if err != nil {
			return nil, err
		}
		res.Relaxations = st.Relaxations()
		tri.Copy[E](tri.Table[E](t.rm), tt)
	case Parallel:
		if paged {
			relax, err := solvePaged(ctx, t, res, tile, workers, opts, diskFaultKinds)
			if err != nil {
				return nil, err
			}
			res.Relaxations = relax
			break
		}
		relax, err := solveParallel(ctx, t, res, tile, workers, schedSide, opts, faultKinds)
		if err != nil {
			return nil, err
		}
		res.Relaxations = relax
	case Cell:
		cfg := cellsim.QS20()
		if opts.SingleChip {
			cfg = cellsim.SingleCell()
		}
		mach, err := cellsim.NewMachine(cfg)
		if err != nil {
			return nil, err
		}
		if workers > len(mach.SPEs) {
			workers = len(mach.SPEs)
		}
		tt := tri.ToTiled(t.rm, tile)
		hs := &resilience.HealStats{}
		copts := npdp.CellOptions{
			Workers:           workers,
			SchedSide:         schedSide,
			UseSIMD:           true,
			DoubleBuffer:      true,
			CBStepCycles:      cbStepCycles[E](),
			ScalarRelaxCycles: npdp.ScalarRelaxCyclesFor(prec),
			Seal:              sealOn(opts, faultKinds),
			Heal:              opts.Heal,
			HealAttempts:      opts.HealAttempts,
			HealStats:         hs,
		}
		if opts.FaultRate > 0 {
			copts.Inject = &resilience.Injector{Rate: opts.FaultRate, Seed: opts.FaultSeed, Kinds: faultKinds}
		}
		cres, err := npdp.SolveCellCtx(ctx, tt, mach, copts)
		res.CorruptBlocks = hs.CorruptBlocks
		res.HealRounds = hs.HealRounds
		res.RecomputedTasks = hs.RecomputedTasks
		res.HealFallback = hs.CheckpointFallback
		if err != nil {
			return nil, err
		}
		res.Relaxations = cres.Stats.Relaxations()
		res.ModeledSeconds = cres.Seconds
		res.DMABytes = cres.DMA.TotalBytes()
		tri.Copy[E](tri.Table[E](t.rm), tt)
	default:
		return nil, fmt.Errorf("cellnpdp: unknown engine %v", opts.Engine)
	}
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// solveParallel runs the Parallel engine with the fault-tolerance layer:
// optional resume from a checkpoint, retry and fault-injection policies,
// and — unless disabled — graceful degradation to the serial Tiled
// engine when the parallel compute layer fails. The row-major source is
// only overwritten after a successful solve, so degradation always
// restarts from clean input.
func solveParallel[E Elem](ctx context.Context, t *Table[E], res *Result, tile, workers, schedSide int, opts Options, faultKinds []resilience.FaultKind) (int64, error) {
	tt := tri.ToTiled(t.rm, tile)
	hs := &resilience.HealStats{}
	popts := npdp.ParallelOptions{
		Workers:         workers,
		SchedSide:       schedSide,
		CheckpointPath:  opts.CheckpointPath,
		CheckpointEvery: opts.CheckpointEvery,
		Seal:            sealOn(opts, faultKinds),
		Heal:            opts.Heal,
		HealAttempts:    opts.HealAttempts,
		AuditEvery:      opts.AuditEvery,
		HealStats:       hs,
	}
	if opts.MaxRetries > 0 {
		popts.Retry = resilience.RetryPolicy{
			MaxRetries: opts.MaxRetries,
			BaseDelay:  time.Millisecond,
			MaxDelay:   100 * time.Millisecond,
			Jitter:     true,
		}
	}
	if opts.FaultRate > 0 {
		popts.Inject = &resilience.Injector{Rate: opts.FaultRate, Seed: opts.FaultSeed, Kinds: faultKinds}
	}
	if opts.ResumePath != "" {
		// A crash between writing a snapshot temp and renaming it leaves
		// a `.tmp` orphan beside the checkpoint; resume is the natural
		// point to sweep them (the live checkpoint is never touched).
		if _, err := resilience.RemoveStaleTemps(opts.ResumePath); err != nil && opts.Logf != nil {
			opts.Logf("cellnpdp: %v", err)
		}
		ck, err := resilience.LoadCheckpointFile[E](opts.ResumePath)
		if err != nil {
			return 0, err
		}
		if err := ck.Matches(t.Len(), tile, schedSide); err != nil {
			return 0, err
		}
		graph, err := sched.NewGraph(tt.Blocks(), schedSide)
		if err != nil {
			return 0, err
		}
		if len(ck.Done) != len(graph.Tasks) {
			return 0, fmt.Errorf("cellnpdp: checkpoint records %d tasks, solve schedules %d", len(ck.Done), len(graph.Tasks))
		}
		// Every task the bitmap marks done must have all its memory
		// blocks in the snapshot, or resuming would trust stale cells.
		for id, d := range ck.Done {
			if !d {
				continue
			}
			for _, mb := range graph.Tasks[id].MemoryBlockOrder() {
				if !ck.HasBlock(mb[0], mb[1]) {
					return 0, fmt.Errorf("cellnpdp: checkpoint marks task %d done but lacks memory block (%d,%d)", id, mb[0], mb[1])
				}
			}
		}
		if err := ck.Apply(tt); err != nil {
			return 0, err
		}
		popts.Completed = ck.Done
		res.ResumedTasks = ck.DoneCount()
	}
	st, err := npdp.SolveParallelCtx(ctx, tt, popts)
	res.CorruptBlocks = hs.CorruptBlocks
	res.HealRounds = hs.HealRounds
	res.RecomputedTasks = hs.RecomputedTasks
	res.HealFallback = hs.CheckpointFallback
	if err != nil {
		if !degradable(err) || opts.NoFallback {
			return 0, err
		}
		if opts.Logf != nil {
			opts.Logf("cellnpdp: parallel engine failed (%v); degrading to tiled", err)
		}
		res.Degraded, res.DegradedReason = true, err.Error()
		tt = tri.ToTiled(t.rm, tile)
		st, err = npdp.SolveTiledCtx(ctx, tt)
		if err != nil {
			return 0, err
		}
	}
	tri.Copy[E](tri.Table[E](t.rm), tt)
	return st.Relaxations(), nil
}

// solvePaged runs a solve out of core through the crash-consistent block
// pager: the NDL table is spilled to a CRC-sealed, versioned file and
// only a MemoryBudget-sized working set stays resident. The row-major
// source is only overwritten after a successful solve (materialized from
// the pager), so any failure leaves the caller's table untouched and —
// with a named SpillPath — the committed spill index on disk for
// ResumeSpill.
func solvePaged[E Elem](ctx context.Context, t *Table[E], res *Result, tile, workers int, opts Options, diskFaultKinds []pager.DiskFaultKind) (int64, error) {
	res.Paged = true
	elem := int64(precisionOf[E]().ElemBytes())
	frameBytes := int64(tile)*int64(tile)*elem + 4
	frames := int(opts.MemoryBudget / frameBytes)
	// Each worker pins at most three blocks at once (destination plus one
	// operand pair), and the prefetch pipeline holds two more in flight —
	// below that floor the solve cannot make progress, so the budget is
	// soft there (the pager counts the overshoot in OverBudget).
	if minFrames := workers*3 + 2; frames < minFrames {
		if opts.Logf != nil {
			opts.Logf("cellnpdp: memory budget %d B is below the %d-worker minimum working set (%d B); clamping to %d frames",
				opts.MemoryBudget, workers, int64(minFrames)*frameBytes, minFrames)
		}
		frames = minFrames
	}
	popts := pager.Options{Frames: frames, Logf: opts.Logf}
	if opts.DiskFaultRate > 0 {
		popts.Faults = &pager.DiskFaults{Rate: opts.DiskFaultRate, Seed: opts.DiskFaultSeed, Kinds: diskFaultKinds}
	}
	path := opts.SpillPath
	if path == "" {
		dir, err := os.MkdirTemp("", "cellnpdp-spill-")
		if err != nil {
			return 0, fmt.Errorf("cellnpdp: spill temp dir: %w", err)
		}
		defer os.RemoveAll(dir)
		path = filepath.Join(dir, "solve.npsp")
	}
	var p *pager.Pager[E]
	var err error
	if opts.ResumeSpill {
		p, err = pager.Open[E](path, popts)
		if err != nil {
			return 0, fmt.Errorf("cellnpdp: resume spill: %w", err)
		}
		if p.Len() != t.Len() || p.Tile() != tile {
			p.Close()
			return 0, fmt.Errorf("cellnpdp: spill file is an n=%d tile=%d instance, solve wants n=%d tile=%d", p.Len(), p.Tile(), t.Len(), tile)
		}
	} else {
		tt := tri.ToTiled(t.rm, tile)
		p, err = pager.Create(path, tt, popts)
		if err != nil {
			return 0, fmt.Errorf("cellnpdp: create spill: %w", err)
		}
	}
	defer p.Close()
	if opts.ResumeSpill {
		m := p.Blocks()
		for bi := 0; bi < m; bi++ {
			for bj := bi; bj < m; bj++ {
				if p.IsFinal(bi, bj) {
					res.ResumedTasks++
				}
			}
		}
	}
	st, err := npdp.SolvePagedCtx(ctx, p, npdp.PagedOptions{
		Workers:      workers,
		Resume:       opts.ResumeSpill,
		HealAttempts: opts.HealAttempts,
		Logf:         opts.Logf,
	})
	stats := p.Stats()
	res.PagerStats = &stats
	res.HealRounds = int(stats.PageHeals)
	if err != nil {
		// Close (deferred) commits the index, so a graceful failure with a
		// named SpillPath is resumable; the caller's table is untouched.
		return 0, err
	}
	out := tri.NewTiled[E](t.Len(), tile)
	if err := p.Materialize(out); err != nil {
		return 0, fmt.Errorf("cellnpdp: materialize solved table: %w", err)
	}
	// Refresh the stats after materialization — the final page-ins are
	// disk traffic the bound comparison must see.
	stats = p.Stats()
	res.PagerStats = &stats
	tri.Copy[E](tri.Table[E](t.rm), out)
	return st.Relaxations(), nil
}

// degradable reports whether a parallel failure is a compute-layer fault
// the Tiled engine can recover from (a task failure, panic, or detected
// block corruption — degradation restarts from the clean row-major
// source, so corrupted tiled state is discarded), as opposed to
// cancellation or a configuration/IO error that would fail there too.
func degradable(err error) bool {
	var te *resilience.TaskError
	var pe *resilience.PanicError
	var ce *resilience.CorruptionError
	return errors.As(err, &te) || errors.As(err, &pe) || errors.As(err, &ce)
}

// sealOn reports whether block sealing must be active for a solve:
// requested healing or online audits need seals to act on, and
// injecting silent corruption without seals would let a wrong answer
// escape undetected.
func sealOn(opts Options, kinds []resilience.FaultKind) bool {
	if opts.Heal || opts.AuditEvery > 0 {
		return true
	}
	if opts.FaultRate > 0 {
		for _, k := range kinds {
			if k == resilience.FaultCorrupt {
				return true
			}
		}
	}
	return false
}

// SolveEstimate is the admission-control view of a solve before it runs:
// how many bytes it will pin while in flight and how long the paper's
// Section V model predicts it will take. A server uses the byte figures
// to gate admission against a memory budget and the predicted time to
// shed requests whose deadline cannot be met (internal/serve does both).
type SolveEstimate struct {
	// N and Tile are the problem size and derived memory-block side.
	N, Tile int
	// Workers is the resolved worker count the prediction assumes.
	Workers int
	// TableBytes is the tiled (NDL) table's backing store: all upper-
	// triangle blocks of Tile² cells, diagonal padding included.
	TableBytes int64
	// StagingBytes is the row-major source table the solve reads from
	// and copies back into — resident alongside the tiled table.
	StagingBytes int64
	// CheckpointBytes bounds a full snapshot of the solve (header,
	// bitmap, every block), the extra footprint when checkpointing.
	CheckpointBytes int64
	// SpillFileBytes is the (sparse) on-disk size of a paged solve's
	// spill data file — pristine and final versions of every block plus
	// the header — the disk-side cost of running under MemoryBudget.
	SpillFileBytes int64
	// FootprintBytes is the total the solve pins: table + staging, plus
	// the checkpoint bound when Options.CheckpointPath is set. Under
	// MemoryBudget the tiled table's contribution is capped at the
	// budget — the resident working set replaces the full table.
	FootprintBytes int64
	// PredictedSeconds is T_All = max(T_M, T_C) from the Section V
	// model, instantiated with the solve's geometry and worker count.
	// The constants are the paper's QS20 figures, so treat it as a
	// relative oracle (an n³-faithful cost ordering) and scale it by a
	// measured calibration factor for absolute wall-clock predictions.
	PredictedSeconds float64
	// MemoryBound reports T_M > T_C under the model.
	MemoryBound bool
}

// EstimateSolve predicts the memory footprint and model time of a solve
// with the given options, without running it. The same defaulting as
// SolveCtx applies (workers, block budget, scheduling side).
func EstimateSolve[E Elem](n int, opts Options) (SolveEstimate, error) {
	if err := tri.CheckSize(n); err != nil {
		return SolveEstimate{}, err
	}
	workers := opts.Workers
	if workers < 0 {
		return SolveEstimate{}, fmt.Errorf("cellnpdp: Workers must be non-negative, got %d", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	blockBytes := opts.BlockBytes
	if blockBytes <= 0 {
		blockBytes = 32 * 1024
	}
	schedSide := opts.SchedSide
	if schedSide <= 0 {
		schedSide = 1
	}
	prec := precisionOf[E]()
	tile, err := npdp.DefaultTile(blockBytes, prec)
	if err != nil {
		return SolveEstimate{}, err
	}
	elem := int64(prec.ElemBytes())
	m := int64((n + tile - 1) / tile)
	nblocks := m * (m + 1) / 2
	ms := (m + int64(schedSide) - 1) / int64(schedSide)
	tasks := ms * (ms + 1) / 2
	blockCells := int64(tile) * int64(tile)
	est := SolveEstimate{
		N:            n,
		Tile:         tile,
		Workers:      workers,
		TableBytes:   nblocks * blockCells * elem,
		StagingBytes: int64(n) * int64(n+1) / 2 * elem,
	}
	// Checkpoint layout: 32-byte header + completion bitmap + every block
	// with its 8-byte coordinates + 4-byte CRC (see checkpoint.go).
	est.CheckpointBytes = 32 + (tasks+7)/8 + nblocks*(8+blockCells*elem) + 4
	est.SpillFileBytes = pager.SpillFileSize(n, tile, int(elem))
	est.FootprintBytes = est.TableBytes + est.StagingBytes
	if opts.MemoryBudget > 0 && opts.MemoryBudget < est.TableBytes {
		est.FootprintBytes = opts.MemoryBudget + est.StagingBytes
	}
	if opts.CheckpointPath != "" {
		est.FootprintBytes += est.CheckpointBytes
	}
	// Section V model with the solve's geometry: LocalStore is the
	// six-buffer inverse of the tile side, so BlockSide() == tile and
	// T_M/T_C reflect this run's blocking, not the paper's default.
	params := perfmodel.Params{
		ProblemSize: float64(n),
		LocalStore:  6 * float64(elem) * float64(tile) * float64(tile),
		ElemBytes:   float64(elem),
		Bandwidth:   2 * 25.6e9,
		Clock:       3.2e9,
		Cores:       float64(workers),
		CBSide:      4,
		CBCycles:    cbStepCycles[E](),
	}
	if err := params.Validate(); err != nil {
		return SolveEstimate{}, err
	}
	est.PredictedSeconds = params.Time()
	est.MemoryBound = !params.ComputeBound()
	return est, nil
}
