#!/usr/bin/env bash
# Verify + benchmark entry point for the parallel CPU engine.
#
# Runs the static and race checks the scheduler/engine work depends on,
# then the parallel-engine benchmark sweep (workers × engine ablations,
# ns/op + allocs/op via testing.Benchmark) and writes the JSON report —
# BENCH_PR1.json by default, or the path given as $1. Later PRs bump the
# default artifact name to extend the BENCH_* trajectory.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR1.json}"

echo "== preflight: scripts/ci.sh"
./scripts/ci.sh

echo "== parallel-engine benchmark sweep -> ${out}"
go run ./cmd/benchtables -benchjson "${out}"
