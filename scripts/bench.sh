#!/usr/bin/env bash
# Verify + benchmark entry point for the parallel CPU engine.
#
# Runs the static and race checks the scheduler/engine work depends on,
# then the benchmark sweep — the workers × engine ablations plus, since
# PR 6, the per-kernel stage-1 sweep (scalar / pure-Go panel / vector
# assembly / Four-Russians) — and writes the JSON report. The artifact
# name tracks the PR trajectory: BENCH_PR6.json by default, or the path
# given as $1, so successive PRs diff BENCH_PR_N.json against their
# predecessors.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR6.json}"

echo "== preflight: scripts/ci.sh"
./scripts/ci.sh

echo "== benchmark sweep (engines + stage-1 kernels) -> ${out}"
go run ./cmd/benchtables -benchjson "${out}"
