#!/usr/bin/env bash
# Verify + benchmark entry point for the parallel CPU engine.
#
# Runs the static and race checks the scheduler/engine work depends on,
# then the benchmark sweeps — the workers × engine ablations plus the
# per-kernel stage-1 sweep (PR 6), and the loopback-cluster sweep with
# its kill-recovery scenario (PR 7) — and writes the JSON reports. The
# artifact names track the PR trajectory: BENCH_PR6.json and
# BENCH_PR7.json by default, or the paths given as $1/$2, so successive
# PRs diff BENCH_PR_N.json against their predecessors.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR6.json}"
cluster_out="${2:-BENCH_PR7.json}"

echo "== preflight: scripts/ci.sh"
./scripts/ci.sh

echo "== benchmark sweep (engines + stage-1 kernels) -> ${out}"
go run ./cmd/benchtables -benchjson "${out}"

echo "== cluster sweep (loopback workers + kill recovery) -> ${cluster_out}"
go run ./cmd/benchtables -clusterjson "${cluster_out}"
