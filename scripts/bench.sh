#!/usr/bin/env bash
# Verify + benchmark entry point for the parallel CPU engine.
#
# Runs the static and race checks the scheduler/engine work depends on,
# then the benchmark sweeps — the workers × engine ablations plus the
# per-kernel stage-1 sweep (PR 6), the loopback-cluster sweep with its
# kill-recovery scenario (PR 7), the coordinator-kill warm-standby
# takeover with its failover recovery time (PR 8), and the out-of-core
# resident-set sweep vs the I/O lower bound with its kill-mid-spill
# recovery (PR 9) — and writes the JSON reports. The artifact names
# track the PR trajectory: BENCH_PR6.json, BENCH_PR7.json,
# BENCH_PR8.json and BENCH_PR9.json by default, or the paths given as
# $1/$2/$3/$4, so successive PRs diff BENCH_PR_N.json against their
# predecessors.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR6.json}"
cluster_out="${2:-BENCH_PR7.json}"
failover_out="${3:-BENCH_PR8.json}"
pager_out="${4:-BENCH_PR9.json}"

echo "== preflight: scripts/ci.sh"
./scripts/ci.sh

echo "== benchmark sweep (engines + stage-1 kernels) -> ${out}"
go run ./cmd/benchtables -benchjson "${out}"

echo "== cluster sweep (loopback workers + kill recovery) -> ${cluster_out}"
go run ./cmd/benchtables -clusterjson "${cluster_out}"

echo "== failover sweep (coordinator kill + standby takeover) -> ${failover_out}"
go run ./cmd/benchtables -failoverjson "${failover_out}"

echo "== out-of-core sweep (resident budget vs I/O bound + kill-mid-spill recovery) -> ${pager_out}"
go run ./cmd/benchtables -pagerjson "${pager_out}"
