#!/usr/bin/env bash
# Repo-wide verification gate: formatting, vet, static analysis (when the
# tools are installed), the full test suite under the race detector,
# short fuzz smokes of the checkpoint and seal codecs, and smoke
# fault-injection solves proving the resilience layer end to end: 5%
# loud faults healed through retries, and 5% silent corruption caught by
# the block seals and healed bit-identically (fallback disabled in both
# so recovery can't mask a bug). Called standalone or as the bench.sh
# preflight.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [[ -n "${unformatted}" ]]; then
    echo "gofmt needed on:" >&2
    echo "${unformatted}" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

# Static analyzers are optional: CI images that bake them in get the
# checks, bare toolchains skip with a notice instead of failing.
if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck ./..."
    staticcheck ./...
else
    echo "== staticcheck not installed; skipping"
fi
if command -v govulncheck >/dev/null 2>&1; then
    echo "== govulncheck ./... (advisory)"
    # Advisory only: a published vuln in a dependency should not brick
    # unrelated development, but it must be visible in the log.
    govulncheck ./... || echo "govulncheck reported findings (non-fatal)"
else
    echo "== govulncheck not installed; skipping"
fi

echo "== go test -race ./..."
# The harness package replays every paper table/figure; under the race
# detector that legitimately exceeds go test's default 10m per-package
# timeout, so set an explicit generous one.
go test -race -timeout 30m ./...

echo "== fuzz smoke: checkpoint codec (20s)"
# A short adversarial pass over the NPCK reader: corrupt and truncated
# snapshots must be rejected, never crash or silently resume bad state.
go test -run='^$' -fuzz FuzzCheckpointRoundTrip -fuzztime 20s .

echo "== smoke: fault-injected parallel solve (5% rate, retries, no fallback)"
go run ./cmd/cellnpdp -n 300 -engine parallel -timeout 30m \
    -faultrate 0.05 -faultseed 7 -retries 3 -fallback=false

echo "== fuzz smoke: seal codec (20s)"
# Same discipline for the NPSL seal stream: truncated, bit-flipped or
# reordered seal records must never verify.
go test -run='^$' -fuzz FuzzSealTable -fuzztime 20s .

echo "== smoke: self-healing solve (5% silent corruption, bit-identical to serial)"
# Inject silent bit flips (no error return — only the block seals can
# catch them), heal with fallback disabled so the poisoned-cone path is
# what's proven, and demand bit-identical output to the serial engine.
# Run under the race detector: sealing and auditing race the pool.
healref="$(mktemp)"
trap 'rm -f "${healref}"' EXIT
go run ./cmd/cellnpdp -n 300 -engine serial -save "${healref}"
go run -race ./cmd/cellnpdp -n 300 -engine parallel -timeout 30m \
    -faultkinds corrupt -faultrate 0.05 -faultseed 7 \
    -heal -fallback=false -check "${healref}"
