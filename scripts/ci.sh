#!/usr/bin/env bash
# Repo-wide verification gate: formatting, vet, the full test suite under
# the race detector, and a smoke fault-injection solve proving the
# resilience layer end to end (5% injected faults must complete correctly
# through retries, with fallback disabled so recovery can't mask a bug).
# Called standalone or as the bench.sh preflight.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [[ -n "${unformatted}" ]]; then
    echo "gofmt needed on:" >&2
    echo "${unformatted}" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
# The harness package replays every paper table/figure; under the race
# detector that legitimately exceeds go test's default 10m per-package
# timeout, so set an explicit generous one.
go test -race -timeout 30m ./...

echo "== smoke: fault-injected parallel solve (5% rate, retries, no fallback)"
go run ./cmd/cellnpdp -n 300 -engine parallel \
    -faultrate 0.05 -faultseed 7 -retries 3 -fallback=false
