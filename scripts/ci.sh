#!/usr/bin/env bash
# Repo-wide verification gate: formatting, vet, pinned staticcheck, the
# npdplint invariant suite plus its hot-path codegen regression gate,
# the full test suite under the race detector, short fuzz smokes of the
# checkpoint and seal codecs, and smoke fault-injection solves proving
# the resilience layer end to end: 5% loud faults healed through
# retries, and 5% silent corruption caught by the block seals and
# healed bit-identically (fallback disabled in both so recovery can't
# mask a bug), plus a cluster chaos smoke that SIGKILLs a worker
# mid-wavefront while corrupting boundary blocks and demands a
# bit-identical finish, a coordinator-kill failover smoke that
# SIGKILLs the primary coordinator mid-wavefront and demands the warm
# standby take over and finish bit-identically, and an out-of-core
# disk-fault smoke that pages a solve through a budget-bounded working
# set while injecting torn spill writes (must heal) and ENOSPC (must
# degrade gracefully), both bit-identical to serial. Called standalone
# or as the bench.sh preflight.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [[ -n "${unformatted}" ]]; then
    echo "gofmt needed on:" >&2
    echo "${unformatted}" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

# The vector kernels ship hand-written assembly for two GOARCHes; vet's
# asmdecl checker validates the .s files against their Go stub
# declarations only when that arch's files are in the build, so run the
# kernel package under both (cross runs only load the compiler).
echo "== go vet (asmdecl) internal/kernel on amd64 + arm64"
GOARCH=amd64 go vet ./internal/kernel ./internal/simd
GOARCH=arm64 go vet ./internal/kernel ./internal/simd

# staticcheck is mandatory and pinned, so every run checks the same
# rule set regardless of what the host has installed. The one
# sanctioned skip is a toolchain that cannot fetch the module at all
# (hermetic/offline builds) — and that skip is loud, never silent.
echo "== staticcheck (pinned, mandatory)"
staticcheck_version="2025.1.1"
if staticcheck_out="$(go run "honnef.co/go/tools/cmd/staticcheck@${staticcheck_version}" ./... 2>&1)"; then
    [[ -z "${staticcheck_out}" ]] || echo "${staticcheck_out}"
elif grep -qiE "dial tcp|no such host|connection refused|i/o timeout|proxyconnect|module lookup disabled|not in std" <<<"${staticcheck_out}"; then
    echo "NOTICE: staticcheck SKIPPED: cannot fetch honnef.co/go/tools@${staticcheck_version} (offline toolchain)" >&2
    echo "${staticcheck_out}" | tail -n 3 >&2
else
    echo "${staticcheck_out}" >&2
    echo "staticcheck@${staticcheck_version} failed" >&2
    exit 1
fi

# govulncheck stays advisory: a published vuln in a dependency should
# not brick unrelated development, but it must be visible in the log.
if command -v govulncheck >/dev/null 2>&1; then
    echo "== govulncheck ./... (advisory)"
    govulncheck ./... || echo "govulncheck reported findings (non-fatal)"
else
    echo "== govulncheck not installed; skipping"
fi

echo "== npdplint ./... (repo invariant suite, 8 analyzers)"
# Custom analyzers: atomic publication discipline, context dispatch
# contract, hot-path purity, resilience error-drop rules (watch list
# discovered from //npdplint:watch directives), wire-bounded
# allocations, goroutine lifecycles, net.Conn deadline regimes, and
# verify-before-trust ordering for sealed payloads and epoch fences.
# Suppressions require a justified //nolint:npdplint, which the tool
# itself audits. The whole suite must land inside a wall-clock budget:
# a lint gate developers wait on has a latency contract too.
npdplint_budget_s=180
npdplint_start="$(date +%s)"
go run ./cmd/npdplint ./...
# Self-lint: the analyzer suite obeys its own invariants. Kept as a
# separate pass so a finding inside internal/analysis names itself in
# the log rather than hiding in the module-wide sweep above.
echo "== npdplint self-lint (./internal/analysis/...)"
go run ./cmd/npdplint ./internal/analysis/...
npdplint_elapsed=$(($(date +%s) - npdplint_start))
echo "npdplint wall time: ${npdplint_elapsed}s (budget ${npdplint_budget_s}s)"
if ((npdplint_elapsed > npdplint_budget_s)); then
    echo "npdplint exceeded its ${npdplint_budget_s}s wall-clock budget (took ${npdplint_elapsed}s)" >&2
    exit 1
fi

echo "== codegen gate (hot-path escape/bounds-check baseline)"
# Compiler-output half of the hotpath invariant: diffs -m and check_bce
# diagnostics in //npdp:hotpath kernels against the golden baseline.
scripts/codegen_gate.sh

echo "== go test -race ./..."
# The harness package replays every paper table/figure; under the race
# detector that legitimately exceeds go test's default 10m per-package
# timeout, so set an explicit generous one.
go test -race -timeout 30m ./...

echo "== go test -race (forced pure-Go kernels: CELLNPDP_FORCE_SCALAR=1, GOAMD64=v1)"
# The vector dispatch has two halves: the assembly fast path (covered
# above on AVX2 hosts) and the pure-Go fallback every other machine
# runs. Force the fallback process-wide — the env var folds into
# detection at init — and pin GOAMD64=v1 so the compiler cannot assume
# AVX either, then re-run the packages whose kernels and dispatch state
# differ between the two worlds.
CELLNPDP_FORCE_SCALAR=1 GOAMD64=v1 go test -race -timeout 30m \
    ./internal/kernel ./internal/simd ./internal/npdp ./internal/perfmodel \
    ./internal/fourrussians ./internal/zuker .

# Native fuzzing only exists on a few GOOS/GOARCH pairs; anywhere else
# `go test -fuzz` fails with an opaque flag error, so check up front
# and fail with a message that says what is actually missing.
goos="$(go env GOOS)"
goarch="$(go env GOARCH)"
case "${goos}/${goarch}" in
linux/amd64 | linux/arm64 | darwin/amd64 | darwin/arm64 | windows/amd64 | windows/arm64) ;;
*)
    echo "error: the fuzz smokes need native fuzzing support (linux, darwin or windows on amd64/arm64); this toolchain is ${goos}/${goarch}" >&2
    exit 1
    ;;
esac

echo "== fuzz smoke: checkpoint codec (20s)"
# A short adversarial pass over the NPCK reader: corrupt and truncated
# snapshots must be rejected, never crash or silently resume bad state.
go test -run='^$' -fuzz FuzzCheckpointRoundTrip -fuzztime 20s .

echo "== smoke: fault-injected parallel solve (5% rate, retries, no fallback)"
go run ./cmd/cellnpdp -n 300 -engine parallel -timeout 30m \
    -faultrate 0.05 -faultseed 7 -retries 3 -fallback=false

echo "== fuzz smoke: kernel equivalence (20s)"
# Every selectable min-plus kernel (panel, vector asm, forced fallback,
# CB-step) against the scalar reference on arbitrary tiles with ±Inf
# sentinels; comparison is bit-exact.
go test -run='^$' -fuzz FuzzKernelEquivalence -fuzztime 20s ./internal/kernel

echo "== fuzz smoke: seal codec (20s)"
# Same discipline for the NPSL seal stream: truncated, bit-flipped or
# reordered seal records must never verify.
go test -run='^$' -fuzz FuzzSealTable -fuzztime 20s .

echo "== smoke: self-healing solve (5% silent corruption, bit-identical to serial)"
# Inject silent bit flips (no error return — only the block seals can
# catch them), heal with fallback disabled so the poisoned-cone path is
# what's proven, and demand bit-identical output to the serial engine.
# Run under the race detector: sealing and auditing race the pool.
healref="$(mktemp)"
trap 'rm -f "${healref}"' EXIT
go run ./cmd/cellnpdp -n 300 -engine serial -save "${healref}"
go run -race ./cmd/cellnpdp -n 300 -engine parallel -timeout 30m \
    -faultkinds corrupt -faultrate 0.05 -faultseed 7 \
    -heal -fallback=false -check "${healref}"

echo "== fuzz smoke: spill index codec (20s)"
# Same discipline for the NPSX spill index: truncated, bit-flipped or
# oversized index bytes must be rejected, never crash or page in from
# a slot the committed index does not vouch for.
go test -run='^$' -fuzz FuzzSpillRoundTrip -fuzztime 20s ./internal/pager

echo "== smoke: out-of-core disk faults (torn writes healed + ENOSPC degraded, verify)"
# The paged solve under the race detector, both arms of the disk-failure
# ladder. Arm 1: torn spill writes — the CRC trailer lands in the
# missing suffix, so the refetch detects corruption and the solve must
# demote the block's cone to pristine and recompute (page_heals). Arm 2:
# every spill write draws ENOSPC — the pager must degrade to a growing
# in-memory working set and still finish (enospc_degradations). Both
# runs must be bit-identical to the serial engine, and the greps prove
# each failure actually fired — a run where nothing tore and nothing
# filled up would pass vacuously.
ooc_ref="$(mktemp)"
ooc_log="$(mktemp)"
trap 'rm -f "${healref}" "${ooc_ref}" "${ooc_log}"' EXIT
go run ./cmd/cellnpdp -n 400 -engine serial -save "${ooc_ref}"
go run -race ./cmd/cellnpdp -n 400 -engine parallel -workers 2 \
    -block 1024 -memory-budget 16384 -timeout 10m \
    -disk-faultrate 0.02 -disk-faultseed 11 -disk-faultkinds torn \
    -check "${ooc_ref}" 2>&1 | tee "${ooc_log}"
grep -q "verified against .*: identical" "${ooc_log}"
if grep "^paged " "${ooc_log}" | grep -qE " page_heals=0 "; then
    echo "out-of-core smoke: torn writes never triggered a heal" >&2
    exit 1
fi
go run -race ./cmd/cellnpdp -n 400 -engine parallel -workers 2 \
    -block 1024 -memory-budget 16384 -timeout 10m \
    -disk-faultrate 0.3 -disk-faultseed 9 -disk-faultkinds enospc \
    -check "${ooc_ref}" 2>&1 | tee "${ooc_log}"
grep -q "verified against .*: identical" "${ooc_log}"
if grep "^paged " "${ooc_log}" | grep -qE " enospc_degradations=0 "; then
    echo "out-of-core smoke: ENOSPC injection never degraded the pager" >&2
    exit 1
fi

echo "== smoke: cluster chaos (3 workers, seeded SIGKILL + silent corruption, heal, verify)"
# Loopback coordinator/worker cluster under the race detector: the
# seeded chaos schedule SIGKILLs one worker mid-wavefront and every
# worker silently corrupts ~25% of its tasks; the coordinator must
# redispatch the dead worker's in-flight tasks, heal each seal mismatch
# through the poisoned cone, and finish bit-identical to the serial
# engine. The greps prove the chaos actually fired — a run where
# nothing died and nothing corrupted would pass vacuously.
cluster_log="$(mktemp)"
trap 'rm -f "${healref}" "${ooc_ref}" "${ooc_log}" "${cluster_log}"' EXIT
go run -race ./cmd/cellnpdp cluster -n 704 -cluster-workers 3 \
    -chaos-kills 1 -chaos-seed 5 -faultrate 0.25 -faultseed 42 \
    -heal -verify -timeout 10m 2>&1 | tee "${cluster_log}"
grep -q "verified against serial engine: identical" "${cluster_log}"
stats="$(grep "cluster: tasks=" "${cluster_log}")"
if grep -qE " deaths=0 " <<<"${stats}"; then
    echo "cluster chaos smoke: no worker death observed" >&2
    exit 1
fi
if grep -qE " mismatches=0 " <<<"${stats}"; then
    echo "cluster chaos smoke: no seal mismatch observed" >&2
    exit 1
fi

echo "== smoke: coordinator-kill failover (warm standby, SIGKILL primary mid-wavefront, verify)"
# Coordinator HA under the race detector: the primary coordinator runs
# as a subprocess replicating its completion log to an in-process warm
# standby; once enough tasks have REPLICATED, the primary is SIGKILLed
# mid-wavefront, the standby's lease expires, it takes over at epoch 2,
# the workers re-home through the epoch fence, and the resumed solve
# must finish bit-identical to the serial engine. The binary itself
# fails if the primary finishes before the kill fires, and the greps
# prove the takeover actually happened — failover that never fired
# would pass vacuously.
failover_log="$(mktemp)"
trap 'rm -f "${healref}" "${ooc_ref}" "${ooc_log}" "${cluster_log}" "${failover_log}"' EXIT
go run -race ./cmd/cellnpdp cluster -n 1536 -cluster-workers 3 \
    -chaos-kill-coordinator -heartbeat 25ms -deadline 500ms -lease 1s \
    -verify -timeout 10m 2>&1 | tee "${failover_log}"
grep -q "standby: takeover epoch=" "${failover_log}"
grep -q "verified against serial engine: identical" "${failover_log}"
fstats="$(grep "cluster: tasks=" "${failover_log}")"
if grep -qE " failovers=0 " <<<"${fstats}"; then
    echo "failover smoke: takeover coordinator reported no failover" >&2
    exit 1
fi
if grep -qE " resumed=0 " <<<"${fstats}"; then
    echo "failover smoke: takeover resumed from zero replicated tasks" >&2
    exit 1
fi
