#!/usr/bin/env bash
# Hot-path codegen regression gate: rebuilds internal/kernel with
#   go build -a -gcflags='-m -d=ssa/check_bce/debug=1'
# and diffs the escape-analysis / bounds-check diagnostics that land in
# //npdp:hotpath functions against scripts/codegen_baseline.txt. Any new
# diagnostic category or increased count fails; decreases print an
# advisory suggesting a baseline refresh.
#
#   scripts/codegen_gate.sh            run the gate
#   scripts/codegen_gate.sh -update    rewrite the baseline from current output
#
# The logic lives in internal/analysis/codegen (shared with
# `go run ./cmd/npdplint -codegen`); this wrapper exists so CI and
# developers invoke the gate the same way.
set -euo pipefail
cd "$(dirname "$0")/.."

exec go run ./cmd/npdplint -codegen -baseline scripts/codegen_baseline.txt "$@"
