#!/usr/bin/env bash
# Hot-path codegen regression gate: rebuilds internal/kernel with
#   go build -a -gcflags='-m -d=ssa/check_bce/debug=1'
# and diffs the escape-analysis / bounds-check diagnostics that land in
# //npdp:hotpath functions against scripts/codegen_baseline.txt. Any new
# diagnostic category or increased count fails; decreases print an
# advisory suggesting a baseline refresh. The baseline carries one
# [GOARCH] section per checked architecture; both the amd64 and arm64
# kernels are checked on every run (cross-GOARCH runs only invoke the
# compiler, so an amd64 box gates the NEON-side fallback too).
#
#   scripts/codegen_gate.sh            run the gate (amd64 + arm64)
#   scripts/codegen_gate.sh -update    rewrite both sections from current output
#
# The logic lives in internal/analysis/codegen (shared with
# `go run ./cmd/npdplint -codegen`); this wrapper exists so CI and
# developers invoke the gate the same way.
set -euo pipefail
cd "$(dirname "$0")/.."

for goarch in amd64 arm64; do
    go run ./cmd/npdplint -codegen -baseline scripts/codegen_baseline.txt -goarch "${goarch}" "$@"
done
