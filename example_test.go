package cellnpdp_test

import (
	"fmt"

	"cellnpdp"
)

// ExampleSolve solves a tiny matrix-chain-shaped instance on the
// simulated Cell and prints the optimum.
func ExampleSolve() {
	tbl, _ := cellnpdp.NewTable[float32](6)
	costs := []float32{3, 1, 4, 1, 5}
	for i, c := range costs {
		tbl.Set(i, i+1, c)
	}
	res, _ := cellnpdp.Solve(tbl, cellnpdp.Options{Engine: cellnpdp.Cell, Workers: 4})
	v, _ := tbl.At(0, 5)
	fmt.Println(v, res.Relaxations > 0)
	// Output: 14 true
}

// ExampleSolve_engineAgreement shows that every engine produces the same
// bits.
func ExampleSolve_engineAgreement() {
	build := func() *cellnpdp.Table[float32] {
		t, _ := cellnpdp.NewTable[float32](40)
		for i := 0; i+1 < 40; i++ {
			t.Set(i, i+1, float32(i%5+1))
		}
		return t
	}
	var vals []float32
	for _, eng := range []cellnpdp.Engine{cellnpdp.Serial, cellnpdp.Tiled, cellnpdp.Parallel, cellnpdp.Cell} {
		t := build()
		cellnpdp.Solve(t, cellnpdp.Options{Engine: eng, Workers: 2})
		v, _ := t.At(0, 39)
		vals = append(vals, v)
	}
	fmt.Println(vals[0] == vals[1], vals[1] == vals[2], vals[2] == vals[3])
	// Output: true true true
}

// ExampleFoldRNA folds a hairpin.
func ExampleFoldRNA() {
	res, _ := cellnpdp.FoldRNA("GGGAAAACCC", cellnpdp.FoldOptions{Engine: cellnpdp.Serial})
	fmt.Println(res.DotBracket)
	// Output: (((....)))
}

// ExampleFoldRNAFull shows a multibranch (cloverleaf) fold that the
// simplified engine-accelerated model cannot express.
func ExampleFoldRNAFull() {
	res, _ := cellnpdp.FoldRNAFull("GGGGGAAGGGGAAAACCCCAAGGGGAAAACCCCAACCCCC")
	fmt.Println(res.DotBracket)
	// Output: (((((..((((....))))..((((....))))..)))))
}

// ExampleMatrixChain reproduces the classic CLRS instance.
func ExampleMatrixChain() {
	cost, paren, _ := cellnpdp.MatrixChain([]int{30, 35, 15, 5, 10, 20, 25}, 2)
	fmt.Println(cost, paren)
	// Output: 15125 ((A0 (A1 A2)) ((A3 A4) A5))
}

// ExampleOptimalBST puts the hot key at the root.
func ExampleOptimalBST() {
	_, depths, _ := cellnpdp.OptimalBST([]float64{0.05, 0.9, 0.05}, 2)
	fmt.Println(depths[1])
	// Output: 1
}

// ExampleParseCYK recognizes balanced parentheses with a weighted CNF
// grammar.
func ExampleParseCYK() {
	g := &cellnpdp.Grammar{
		Symbols: 4,
		Binary: []cellnpdp.BinaryRule{
			{A: 0, B: 0, C: 0, W: -1},
			{A: 0, B: 2, C: 1, W: -1},
			{A: 0, B: 2, C: 3, W: -1},
			{A: 1, B: 0, C: 3, W: 0},
		},
		Lexical: []cellnpdp.LexicalRule{
			{A: 2, T: '(', W: 0},
			{A: 3, T: ')', W: 0},
		},
	}
	_, ok1, _ := cellnpdp.ParseCYK(g, []byte("(()())"), 2)
	_, ok2, _ := cellnpdp.ParseCYK(g, []byte("(()"), 2)
	fmt.Println(ok1, ok2)
	// Output: true false
}

// ExampleMinWeightTriangulation triangulates a square.
func ExampleMinWeightTriangulation() {
	_, tris, _ := cellnpdp.MinWeightTriangulation([]cellnpdp.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1},
	}, 2)
	fmt.Println(len(tris))
	// Output: 2
}
