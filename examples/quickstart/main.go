// Quickstart: build a small NPDP instance, solve it with every engine,
// and confirm they agree bit for bit — including the simulated Cell
// processor, which also reports its modeled hardware time.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cellnpdp"
)

func main() {
	const n = 512
	log.SetFlags(0)

	build := func() *cellnpdp.Table[float32] {
		tbl, err := cellnpdp.NewTable[float32](n)
		if err != nil {
			log.Fatal(err)
		}
		// The classic NPDP base case: adjacent spans have known costs,
		// everything longer starts at infinity and is composed by the
		// recurrence d[i][j] = min(d[i][j], d[i][k] + d[k][j]).
		rng := rand.New(rand.NewSource(7))
		for i := 0; i+1 < n; i++ {
			if err := tbl.Set(i, i+1, float32(1+rng.Float64()*9)); err != nil {
				log.Fatal(err)
			}
		}
		return tbl
	}

	var reference float32
	for _, engine := range []cellnpdp.Engine{cellnpdp.Serial, cellnpdp.Tiled, cellnpdp.Parallel, cellnpdp.Cell} {
		tbl := build()
		res, err := cellnpdp.Solve(tbl, cellnpdp.Options{Engine: engine, Workers: 8})
		if err != nil {
			log.Fatal(err)
		}
		top, err := tbl.At(0, n-1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s d[0][%d] = %.4f  (%d relaxations, %.3fs wall", engine, n-1, top, res.Relaxations, res.WallSeconds)
		if engine == cellnpdp.Cell {
			fmt.Printf(", %.4fs modeled on the QS20, %.1f MiB DMA", res.ModeledSeconds, float64(res.DMABytes)/(1<<20))
		}
		fmt.Println(")")
		if engine == cellnpdp.Serial {
			reference = top
		} else if top != reference {
			log.Fatalf("%v disagrees with serial: %v != %v", engine, top, reference)
		}
	}
	fmt.Println("all engines agree")
}
