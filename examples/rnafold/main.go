// RNA folding example: predict the secondary structure of a tRNA-like
// sequence on the parallel engine, then re-run the bifurcation layer on
// the simulated Cell to see the paper's modeled hardware time.
package main

import (
	"fmt"
	"log"

	"cellnpdp"
)

func main() {
	log.SetFlags(0)
	// A cloverleaf-prone test sequence: four GC-rich stems separated by
	// A/U linkers, similar in shape to a tRNA.
	seq := "GCGGCGAAAACGCCGC" + "AUAU" +
		"GGCCGGAAAACCGGCC" + "AUAU" +
		"GCCGCGAAAACGCGGC" + "AUAU" +
		"CGGCGGAAAACCGCCG"

	res, err := cellnpdp.FoldRNA(seq, cellnpdp.FoldOptions{Engine: cellnpdp.Parallel, Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Sequence)
	fmt.Println(res.DotBracket)
	fmt.Printf("MFE = %.2f kcal/mol across %d base pairs\n\n", res.MFE, len(res.Pairs))

	// Same fold on the simulated Cell Broadband Engine: identical result,
	// plus the modeled QS20 time of the O(n³) layer.
	cell, err := cellnpdp.FoldRNA(seq, cellnpdp.FoldOptions{Engine: cellnpdp.Cell, Workers: 16})
	if err != nil {
		log.Fatal(err)
	}
	if cell.MFE != res.MFE {
		log.Fatalf("cell engine disagrees: %g vs %g", cell.MFE, res.MFE)
	}
	fmt.Printf("simulated QS20 (16 SPEs) bifurcation layer: %.6f s modeled\n", cell.ModeledCellSeconds)
}
