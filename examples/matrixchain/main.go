// Matrix-chain example: one of the NPDP applications the paper's
// introduction lists. Finds the cheapest order to multiply a chain of
// matrices using the weighted NPDP recurrence on the parallel wavefront
// engine, and shows how much the optimal order saves over naive
// left-to-right evaluation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cellnpdp"
)

func main() {
	log.SetFlags(0)

	// A small chain, solved and printed with its parenthesization.
	dims := []int{30, 35, 15, 5, 10, 20, 25}
	cost, paren, err := cellnpdp.MatrixChain(dims, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chain %v\n", dims)
	fmt.Printf("optimal: %d scalar multiplications via %s\n", cost, paren)
	fmt.Printf("naive left-to-right: %d\n\n", leftToRight(dims))

	// A large random chain to show the engine at scale.
	rng := rand.New(rand.NewSource(3))
	big := make([]int, 801)
	for i := range big {
		big[i] = 5 + rng.Intn(120)
	}
	bigCost, _, err := cellnpdp.MatrixChain(big, 8)
	if err != nil {
		log.Fatal(err)
	}
	naive := leftToRight(big)
	fmt.Printf("random chain of %d matrices:\n", len(big)-1)
	fmt.Printf("optimal %d vs naive %d multiplications — %.1fx saved\n",
		bigCost, naive, float64(naive)/float64(bigCost))
}

// leftToRight costs ((A0 A1) A2) ... evaluation.
func leftToRight(dims []int) int64 {
	var cost int64
	rows := int64(dims[0])
	for t := 1; t+1 <= len(dims)-1; t++ {
		cost += rows * int64(dims[t]) * int64(dims[t+1])
	}
	return cost
}
