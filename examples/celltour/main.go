// Cell-simulator tour: what the substrate enforces and reports. Shows the
// six-buffer local-store constraint rejecting an oversized tile, the
// modeled run statistics at several SPE counts, and a per-SPE Gantt chart
// of the parallel procedure.
package main

import (
	"fmt"
	"log"

	"cellnpdp/internal/cellsim"
	"cellnpdp/internal/npdp"
	"cellnpdp/internal/pipeline"
	"cellnpdp/internal/trace"
)

func main() {
	log.SetFlags(0)
	mach, err := cellsim.NewMachine(cellsim.QS20())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IBM QS20 model: %d SPEs, %d KB local store (%d KB for data), %.1f GB/s per chip\n\n",
		len(mach.SPEs), mach.Config.LocalStoreBytes/1024, mach.Config.DataBytes()/1024,
		mach.Config.ChannelBandwidth/1e9)

	opts := func(w int) npdp.CellOptions {
		return npdp.CellOptions{
			Workers: w, SchedSide: 1, UseSIMD: true, DoubleBuffer: true,
			CBStepCycles:      pipeline.CBStepCyclesSP(),
			ScalarRelaxCycles: npdp.DefaultScalarRelaxCycles,
		}
	}

	// 1. The local store is a hard budget: six tile² buffers must fit in
	//    208 KB. Tile 128 needs 6 × 64 KB = 384 KB and is rejected.
	if _, err := npdp.ModelCell(1024, 128, npdp.Single, mach, opts(4)); err != nil {
		fmt.Printf("tile 128 rejected, as on real hardware:\n  %v\n\n", err)
	} else {
		log.Fatal("oversized tile unexpectedly accepted")
	}

	// 2. Modeled scaling at the paper's block size.
	fmt.Println("n=2048, 32 KB memory blocks (tile 88):")
	var one float64
	for _, w := range []int{1, 2, 4, 8, 16} {
		res, err := npdp.ModelCell(2048, 88, npdp.Single, mach, opts(w))
		if err != nil {
			log.Fatal(err)
		}
		if w == 1 {
			one = res.Seconds
		}
		fmt.Printf("  %2d SPEs: %8.4fs modeled  speedup %5.2fx  efficiency %5.1f%%  DMA %6.1f MiB\n",
			w, res.Seconds, one/res.Seconds, res.ParallelEfficiency()*100,
			float64(res.DMA.TotalBytes())/(1<<20))
	}
	fmt.Println()

	// 3. Where the time goes: trace one run and draw it.
	lg := &trace.Log{}
	tracedOpts := opts(8)
	tracedOpts.Trace = lg
	if _, err := npdp.ModelCell(1024, 88, npdp.Single, mach, tracedOpts); err != nil {
		log.Fatal(err)
	}
	fmt.Println("n=1024 on 8 SPEs:")
	fmt.Print(lg.Gantt(90))
	fmt.Println()
	fmt.Print(lg.String())
}
