// Optimal binary search tree example: the third classic NPDP application.
// Builds the cost-optimal BST for a Zipf-distributed dictionary and
// compares its expected lookup cost to a balanced tree's.
package main

import (
	"fmt"
	"log"

	"cellnpdp"
)

func main() {
	log.SetFlags(0)

	// A Zipf-like access distribution over 1000 keys: a few keys take
	// most of the traffic, which is where an optimal BST beats balance.
	const m = 1000
	weights := make([]float64, m)
	var total float64
	for k := range weights {
		weights[k] = 1 / float64(k+1)
		total += weights[k]
	}
	for k := range weights {
		weights[k] /= total
	}

	cost, depths, err := cellnpdp.OptimalBST(weights, 8)
	if err != nil {
		log.Fatal(err)
	}

	// Balanced-tree expected cost under the same distribution.
	balDepth := balancedDepths(m)
	var balCost float64
	maxDepth := 0
	for k, w := range weights {
		balCost += w * float64(balDepth[k])
		if depths[k] > maxDepth {
			maxDepth = depths[k]
		}
	}

	fmt.Printf("%d keys, Zipf access distribution\n", m)
	fmt.Printf("optimal BST expected comparisons: %.3f (depth up to %d)\n", cost, maxDepth)
	fmt.Printf("balanced BST expected comparisons: %.3f\n", balCost)
	fmt.Printf("optimal saves %.1f%%; hot key depths: #1→%d #2→%d #3→%d\n",
		100*(balCost-cost)/balCost, depths[0], depths[1], depths[2])
}

// balancedDepths returns key depths in a perfectly balanced BST.
func balancedDepths(m int) []int {
	d := make([]int, m)
	var build func(lo, hi, depth int)
	build = func(lo, hi, depth int) {
		if lo >= hi {
			return
		}
		mid := (lo + hi) / 2
		d[mid] = depth
		build(lo, mid, depth+1)
		build(mid+1, hi, depth+1)
	}
	build(0, m, 1)
	return d
}
