// Benchmarks regenerating the paper's evaluation, one target per table
// and figure (see DESIGN.md §4 for the mapping), plus ablation benches
// for the design choices. Absolute host nanoseconds are not the paper's
// numbers; the custom metrics (modeled seconds, speedups, bytes) carry
// the reproduced quantities.
package cellnpdp

import (
	"testing"

	"cellnpdp/internal/baseline"
	"cellnpdp/internal/cachesim"
	"cellnpdp/internal/cellsim"
	"cellnpdp/internal/kernel"
	"cellnpdp/internal/npdp"
	"cellnpdp/internal/pipeline"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/simd"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
	"cellnpdp/internal/zuker"
)

// benchOpts builds the standard CellNPDP options.
func benchOpts(workers int, prec npdp.Precision) npdp.CellOptions {
	cycles := pipeline.CBStepCyclesSP()
	if prec == npdp.Double {
		cycles = pipeline.CBStepCyclesDP()
	}
	return npdp.CellOptions{
		Workers: workers, SchedSide: 1, UseSIMD: true, DoubleBuffer: true,
		CBStepCycles: cycles, ScalarRelaxCycles: npdp.DefaultScalarRelaxCycles,
	}
}

func mustMachine(b *testing.B) *cellsim.Machine {
	b.Helper()
	m, err := cellsim.NewMachine(cellsim.QS20())
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// ---- Table I: the computing-block kernel ----

// BenchmarkTable1_CountedCBStep runs the instrumented 80-instruction SIMD
// step (12 load + 16 shuffle + 16 add + 16 cmp + 16 sel + 4 store).
func BenchmarkTable1_CountedCBStep(b *testing.B) {
	blk := make([]float32, 16)
	var counts simd.Counts
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kernel.CountedStepF32(blk, blk, blk, 4, &counts)
	}
	b.ReportMetric(float64(counts.Total())/float64(b.N), "instrs/step")
	b.ReportMetric(pipeline.CBStepCyclesSP(), "modeled-cycles/step")
}

// BenchmarkTable1_PlainCBStep runs the production (uncounted) step.
func BenchmarkTable1_PlainCBStep(b *testing.B) {
	blk := make([]float32, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kernel.Step4x4(blk, blk, blk, 4)
	}
	b.ReportMetric(64, "relaxations/step")
}

// ---- Table II: QS20 times ----

// BenchmarkTable2_ModelQS20 runs the timing-only CellNPDP model at the
// paper's smallest size and reports the modeled seconds.
func BenchmarkTable2_ModelQS20(b *testing.B) {
	m := mustMachine(b)
	var modeled float64
	for i := 0; i < b.N; i++ {
		res, err := npdp.ModelCell(4096, 88, npdp.Single, m, benchOpts(16, npdp.Single))
		if err != nil {
			b.Fatal(err)
		}
		modeled = res.Seconds
	}
	b.ReportMetric(modeled, "modeled-s(n=4096,16SPE)")
	b.ReportMetric(0.22, "paper-s")
}

// BenchmarkTable2_FunctionalCell actually computes the DP through the
// simulated local stores and DMA at a scaled size.
func BenchmarkTable2_FunctionalCell(b *testing.B) {
	m := mustMachine(b)
	src := workload.Chain[float32](512, 1)
	b.ResetTimer()
	var modeled float64
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 88)
		res, err := npdp.SolveCell(tt, m, benchOpts(16, npdp.Single))
		if err != nil {
			b.Fatal(err)
		}
		modeled = res.Seconds
	}
	b.ReportMetric(modeled, "modeled-s(n=512)")
}

// BenchmarkTable2_OriginalSPEModel reports the baseline row of Table II.
func BenchmarkTable2_OriginalSPEModel(b *testing.B) {
	var sec float64
	for i := 0; i < b.N; i++ {
		res, err := npdp.ModelOriginalSPE(4096, npdp.Single, cellsim.QS20(), npdp.DefaultScalarRelaxCycles)
		if err != nil {
			b.Fatal(err)
		}
		sec = res.Seconds
	}
	b.ReportMetric(sec, "modeled-s(n=4096)")
	b.ReportMetric(3061, "paper-s")
}

// BenchmarkTable2_OriginalPPEModel reports the PPE row of Table II.
func BenchmarkTable2_OriginalPPEModel(b *testing.B) {
	var sec float64
	for i := 0; i < b.N; i++ {
		s, err := npdp.ModelOriginalPPE(4096, npdp.Single, npdp.DefaultPPEModel())
		if err != nil {
			b.Fatal(err)
		}
		sec = s
	}
	b.ReportMetric(sec, "modeled-s(n=4096)")
	b.ReportMetric(715, "paper-s")
}

// ---- Table III: CPU platform ----

// BenchmarkTable3_OriginalCPU measures the Figure 1 algorithm on the host.
func BenchmarkTable3_OriginalCPU(b *testing.B) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := src.Clone()
		npdp.SolveSerial(m)
	}
}

// BenchmarkTable3_CellNPDPCPU measures the full CellNPDP-structured
// parallel engine on the host (8 workers, paper tile).
func BenchmarkTable3_CellNPDPCPU(b *testing.B) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 88)
		if _, err := npdp.SolveParallel(tt, npdp.ParallelOptions{Workers: 8, SchedSide: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 9: data-transfer amounts ----

// BenchmarkFig9a_DMATraffic reports modeled Cell DMA bytes for the
// original layout and the NDL.
func BenchmarkFig9a_DMATraffic(b *testing.B) {
	m := mustMachine(b)
	var orig, ndl int64
	for i := 0; i < b.N; i++ {
		o, err := npdp.ModelOriginalSPE(4096, npdp.Single, cellsim.QS20(), npdp.DefaultScalarRelaxCycles)
		if err != nil {
			b.Fatal(err)
		}
		n, err := npdp.ModelCell(4096, 88, npdp.Single, m, benchOpts(16, npdp.Single))
		if err != nil {
			b.Fatal(err)
		}
		orig, ndl = o.DMA.TotalBytes(), n.DMA.TotalBytes()
	}
	b.ReportMetric(float64(orig)/1e9, "original-GB")
	b.ReportMetric(float64(ndl)/1e9, "NDL-GB")
}

// BenchmarkFig9b_CacheTraffic replays both layouts through the Nehalem
// cache hierarchy and reports memory bytes.
func BenchmarkFig9b_CacheTraffic(b *testing.B) {
	var orig, ndl int64
	for i := 0; i < b.N; i++ {
		h, err := cachesim.Nehalem()
		if err != nil {
			b.Fatal(err)
		}
		cachesim.TraceOriginal(h, 256, 4)
		orig = h.MemBytes()
		h2, err := cachesim.Nehalem()
		if err != nil {
			b.Fatal(err)
		}
		cachesim.TraceTiled(h2, 256, 16, 4)
		ndl = h2.MemBytes()
	}
	b.ReportMetric(float64(orig), "original-bytes")
	b.ReportMetric(float64(ndl), "NDL-bytes")
}

// ---- Figures 10/11: speedup breakdowns ----

// benchBreakdownCell reports the modeled Cell-side breakdown factors.
func benchBreakdownCell(b *testing.B, prec npdp.Precision) {
	m := mustMachine(b)
	tile := 88
	if prec == npdp.Double {
		tile = 64
	}
	var ndlX, spepX, parpX float64
	for i := 0; i < b.N; i++ {
		orig, err := npdp.ModelOriginalSPE(4096, prec, cellsim.QS20(), npdp.DefaultScalarRelaxCycles)
		if err != nil {
			b.Fatal(err)
		}
		scalarOpts := benchOpts(1, prec)
		scalarOpts.UseSIMD = false
		ndl, err := npdp.ModelCell(4096, tile, prec, m, scalarOpts)
		if err != nil {
			b.Fatal(err)
		}
		spep, err := npdp.ModelCell(4096, tile, prec, m, benchOpts(1, prec))
		if err != nil {
			b.Fatal(err)
		}
		parp, err := npdp.ModelCell(4096, tile, prec, m, benchOpts(16, prec))
		if err != nil {
			b.Fatal(err)
		}
		ndlX = orig.Seconds / ndl.Seconds
		spepX = ndl.Seconds / spep.Seconds
		parpX = spep.Seconds / parp.Seconds
	}
	b.ReportMetric(ndlX, "NDL-x")
	b.ReportMetric(spepX, "SPEP-x")
	b.ReportMetric(parpX, "PARP16-x")
}

// BenchmarkFig10a_BreakdownCellSP: paper averages 31.6x / 28x / 15.7x.
func BenchmarkFig10a_BreakdownCellSP(b *testing.B) { benchBreakdownCell(b, npdp.Single) }

// BenchmarkFig11a_BreakdownCellDP: the DP breakdown (smaller SPEP bar).
func BenchmarkFig11a_BreakdownCellDP(b *testing.B) { benchBreakdownCell(b, npdp.Double) }

// The four measured stages of the CPU-side breakdown (Figures 10(b) and
// 11(b)) as separate benches so `-bench Fig10b` prints the whole series.

func BenchmarkFig10b_Original(b *testing.B) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := src.Clone()
		npdp.SolveSerial(m)
	}
}

func BenchmarkFig10b_NDLScalar(b *testing.B) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 88)
		if _, err := npdp.SolveTiledScalar(tt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10b_CBKernel(b *testing.B) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 88)
		if _, err := npdp.SolveTiled(tt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10b_Parallel8(b *testing.B) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 88)
		if _, err := npdp.SolveParallel(tt, npdp.ParallelOptions{Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11b_Original(b *testing.B) {
	src := workload.Chain[float64](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := src.Clone()
		npdp.SolveSerial(m)
	}
}

func BenchmarkFig11b_CBKernel(b *testing.B) {
	src := workload.Chain[float64](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 64)
		if _, err := npdp.SolveTiled(tt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11b_Parallel8(b *testing.B) {
	src := workload.Chain[float64](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 64)
		if _, err := npdp.SolveParallel(tt, npdp.ParallelOptions{Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 12: vs TanNPDP ----

func BenchmarkFig12a_TanNPDP(b *testing.B) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := src.Clone()
		if _, err := baseline.Solve(m, baseline.Options{Workers: 8, Tile: 88}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12a_CellNPDP(b *testing.B) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 88)
		if _, err := npdp.SolveParallel(tt, npdp.ParallelOptions{Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12b_TanNPDP(b *testing.B) {
	src := workload.Chain[float64](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := src.Clone()
		if _, err := baseline.Solve(m, baseline.Options{Workers: 8, Tile: 64}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12b_CellNPDP(b *testing.B) {
	src := workload.Chain[float64](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 64)
		if _, err := npdp.SolveParallel(tt, npdp.ParallelOptions{Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 13: memory-block size sweep ----

// BenchmarkFig13_BlockSizes reports the modeled speedup over the 32 KB /
// 1 SPE baseline for each block size at 16 SPEs.
func BenchmarkFig13_BlockSizes(b *testing.B) {
	m := mustMachine(b)
	tiles := map[string]int{"32KB": 88, "16KB": 64, "8KB": 44, "4KB": 32}
	var base float64
	speed := map[string]float64{}
	for i := 0; i < b.N; i++ {
		r, err := npdp.ModelCell(4096, 88, npdp.Single, m, benchOpts(1, npdp.Single))
		if err != nil {
			b.Fatal(err)
		}
		base = r.Seconds
		for name, tile := range tiles {
			r16, err := npdp.ModelCell(4096, tile, npdp.Single, m, benchOpts(16, npdp.Single))
			if err != nil {
				b.Fatal(err)
			}
			speed[name] = base / r16.Seconds
		}
	}
	for _, name := range []string{"32KB", "16KB", "8KB", "4KB"} {
		b.ReportMetric(speed[name], name+"-x16SPE")
	}
}

// ---- Application benches ----

// BenchmarkZukerFoldParallel folds a 1 knt random RNA on the parallel engine.
func BenchmarkZukerFoldParallel(b *testing.B) {
	seq, err := zuker.ParseSeq(workload.RNA(1000, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zuker.Fold(seq, zuker.Options{Engine: zuker.EngineParallel, Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation benches (DESIGN.md §6) ----

// BenchmarkAblationLayout compares equal tiling on the two layouts:
// block-sequential NDL vs scattered row-major (the TanNPDP layout).
func BenchmarkAblationLayout_NDL(b *testing.B) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 88)
		if _, err := npdp.SolveTiledScalar(tt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLayout_RowMajor(b *testing.B) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := src.Clone()
		if _, err := baseline.Solve(m, baseline.Options{Workers: 1, Tile: 88}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCB compares stage 2 with 4×4 computing blocks against
// straight scalar loops at equal layout and tiling.
func BenchmarkAblationCB_Kernel(b *testing.B) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 88)
		if _, err := npdp.SolveTiled(tt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCB_Scalar(b *testing.B) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 88)
		if _, err := npdp.SolveTiledScalar(tt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDoubleBuf reports the modeled cost of disabling the
// stage-1 prefetch overlap.
func BenchmarkAblationDoubleBuf(b *testing.B) {
	m := mustMachine(b)
	var on, off float64
	for i := 0; i < b.N; i++ {
		r, err := npdp.ModelCell(4096, 88, npdp.Single, m, benchOpts(16, npdp.Single))
		if err != nil {
			b.Fatal(err)
		}
		on = r.Seconds
		opts := benchOpts(16, npdp.Single)
		opts.DoubleBuffer = false
		r2, err := npdp.ModelCell(4096, 88, npdp.Single, m, opts)
		if err != nil {
			b.Fatal(err)
		}
		off = r2.Seconds
	}
	b.ReportMetric(on, "double-buffered-s")
	b.ReportMetric(off, "serialized-s")
}

// BenchmarkAblationSchedBlock sweeps the scheduling-block side: larger
// tasks amortize dispatch overhead but reduce available parallelism.
func BenchmarkAblationSchedBlock(b *testing.B) {
	m := mustMachine(b)
	secs := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, g := range []int{1, 2, 4} {
			opts := benchOpts(16, npdp.Single)
			opts.SchedSide = g
			r, err := npdp.ModelCell(4096, 88, npdp.Single, m, opts)
			if err != nil {
				b.Fatal(err)
			}
			secs[g] = r.Seconds
		}
	}
	b.ReportMetric(secs[1], "g1-s")
	b.ReportMetric(secs[2], "g2-s")
	b.ReportMetric(secs[4], "g4-s")
}

// BenchmarkAblationDeps compares the simplified two-edge dependence graph
// against full dependence counting on the host parallel engine.
func BenchmarkAblationDeps_Simplified(b *testing.B) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 32)
		if _, err := npdp.SolveParallel(tt, npdp.ParallelOptions{Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDeps_Full(b *testing.B) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 32)
		if _, err := npdp.SolveParallel(tt, npdp.ParallelOptions{Workers: 8, FullDeps: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphBuild isolates graph-construction overhead of the two
// dependence schemes.
func BenchmarkGraphBuild_Simplified(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sched.NewGraph(128, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphBuild_Full(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sched.NewFullGraph(128, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLockfree isolates the scheduler rebuild: the same
// dependence graph driven through the lock-free RunPool (atomic
// dependence counters, no mutex on the completion path) versus the seed's
// mutex-guarded RunPoolLocked, with trivial task bodies so dispatch
// overhead dominates.
func benchPoolDispatch(b *testing.B, run func(*sched.Graph, int, func(int, sched.Task) error) error) {
	g, err := sched.NewGraph(96, 1) // 4656 tiny tasks
	if err != nil {
		b.Fatal(err)
	}
	workers := 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(g, workers, func(int, sched.Task) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(g.Tasks)*b.N)/b.Elapsed().Seconds(), "tasks/s")
}

func BenchmarkAblationLockfree_LockFree(b *testing.B) { benchPoolDispatch(b, sched.RunPool) }
func BenchmarkAblationLockfree_Mutex(b *testing.B)    { benchPoolDispatch(b, sched.RunPoolLocked) }

// BenchmarkAblationPanel isolates the stage-1 kernel rebuild on one
// paper-sized memory-block product: the register-blocked 4×t panel kernel
// (with its float32 fast path) versus the seed's 4×4 CB-step MulMinPlus.
func benchStage1(b *testing.B, mul func(c, a, bb []float32, t int) kernel.Stats) {
	const tile = 88
	blk := func(seed int64) []float32 {
		s := make([]float32, tile*tile)
		for i := range s {
			s[i] = float32((int64(i)*seed)%251) * 0.5
		}
		return s
	}
	c, a, bb := blk(3), blk(5), blk(7)
	b.ReportAllocs()
	b.ResetTimer()
	var st kernel.Stats
	for i := 0; i < b.N; i++ {
		st = mul(c, a, bb, tile)
	}
	b.ReportMetric(float64(st.Relaxations()*int64(b.N))/b.Elapsed().Seconds(), "relax/s")
}

func BenchmarkAblationPanel_Panel(b *testing.B)   { benchStage1(b, kernel.PanelMinPlusF32) }
func BenchmarkAblationPanel_Generic(b *testing.B) { benchStage1(b, kernel.PanelMinPlus[float32]) }
func BenchmarkAblationPanel_CBStep(b *testing.B)  { benchStage1(b, kernel.MulMinPlus[float32]) }

// BenchmarkAblationEngine runs the whole parallel engine at the Fig-10b
// scale in the seed configuration (mutex pool + CB-step stage 1) and the
// PR-1 configuration (lock-free pool + panel stage 1); the workers sweep
// at n=2048 lives in BENCH_PR1.json via scripts/bench.sh.
func benchEngineConfig(b *testing.B, opts npdp.ParallelOptions) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 88)
		if _, err := npdp.SolveParallel(tt, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEngine_Seed(b *testing.B) {
	benchEngineConfig(b, npdp.ParallelOptions{Workers: 8, MutexPool: true, NoPanelKernel: true})
}

func BenchmarkAblationEngine_PR1(b *testing.B) {
	benchEngineConfig(b, npdp.ParallelOptions{Workers: 8})
}

// BenchmarkAblationWavefront compares the paper's task-queue parallel
// procedure against the prior work's barrier-synchronized wavefront.
func BenchmarkAblationWavefront_TaskQueue(b *testing.B) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 32)
		if _, err := npdp.SolveParallel(tt, npdp.ParallelOptions{Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWavefront_Barrier(b *testing.B) {
	src := workload.Chain[float32](1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := tri.ToTiled(src, 32)
		if _, err := npdp.SolveWavefrontBarrier(tt, 8); err != nil {
			b.Fatal(err)
		}
	}
}
