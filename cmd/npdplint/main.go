// npdplint is the repo's invariant multichecker: it runs the custom
// static analyzers of internal/analysis (atomicfield, ctxdispatch,
// hotpath, errdrop, allocbound, gospawn, netdeadline, verifyfirst)
// over the module, mirroring an x/tools multichecker without the
// external dependency. The standard analyzer suite runs
// alongside via the toolchain-pinned `go vet` (pass -vet to run it from
// here); the compiler-output half of the hotpath invariant is the
// codegen gate (-codegen, or scripts/codegen_gate.sh).
//
// Usage:
//
//	npdplint [-json] [-vet] [-c analyzer,...] [packages...]
//	npdplint -codegen [-update] [-goarch arch] [-baseline file] [package]
//	npdplint -list
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"cellnpdp/internal/analysis"
	"cellnpdp/internal/analysis/codegen"
	"cellnpdp/internal/analysis/driver"
)

func main() {
	os.Exit(run())
}

// listAnalyzers renders the -list output: one line per registered
// analyzer, name then doc string.
func listAnalyzers() string {
	var b strings.Builder
	for _, a := range analysis.All() {
		fmt.Fprintf(&b, "%-12s %s\n", a.Name, a.Doc)
	}
	return b.String()
}

func run() int {
	var (
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array for tooling consumers")
		vet      = flag.Bool("vet", false, "also run the toolchain-pinned `go vet` on the same patterns")
		sel      = flag.String("c", "", "comma-separated analyzer subset (default: all)")
		list     = flag.Bool("list", false, "list analyzers and exit")
		gate     = flag.Bool("codegen", false, "run the hot-path codegen regression gate instead of the analyzers")
		baseline = flag.String("baseline", "scripts/codegen_baseline.txt", "codegen gate baseline file")
		update   = flag.Bool("update", false, "rewrite this GOARCH's section of the codegen baseline from current compiler output")
		goarch   = flag.String("goarch", "", "GOARCH for the codegen gate ('' = host); cross-arch runs only invoke the compiler")
	)
	flag.Parse()

	if *list {
		fmt.Print(listAnalyzers())
		return 0
	}

	if *gate {
		pkg := "./internal/kernel"
		if flag.NArg() > 0 {
			pkg = flag.Arg(0)
		}
		if err := codegen.Gate(pkg, *baseline, *goarch, *update, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "npdplint -codegen: %v\n", err)
			return 1
		}
		return 0
	}

	analyzers := analysis.All()
	if *sel != "" {
		analyzers = nil
		for _, name := range strings.Split(*sel, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "npdplint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "npdplint: go vet failed: %v\n", err)
			return 1
		}
	}

	pkgs, err := driver.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "npdplint: %v\n", err)
		return 2
	}
	var diags []analysis.Diagnostic
	for _, p := range pkgs {
		d, err := p.Run(analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "npdplint: %s: %v\n", p.ImportPath, err)
			return 2
		}
		diags = append(diags, d...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "npdplint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "npdplint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
