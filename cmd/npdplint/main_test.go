package main

import (
	"strings"
	"testing"
)

// TestListNamesEightAnalyzers pins the -list roster: the suite is
// exactly the eight analyzers DESIGN.md §8 documents, in reporting
// order. A new analyzer (or a dropped one) must update this test, the
// registry test, and the docs together.
func TestListNamesEightAnalyzers(t *testing.T) {
	want := []string{
		"atomicfield", "ctxdispatch", "hotpath", "errdrop",
		"allocbound", "gospawn", "netdeadline", "verifyfirst",
	}
	out := listAnalyzers()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(want) {
		t.Fatalf("-list printed %d analyzers, want %d:\n%s", len(lines), len(want), out)
	}
	for i, name := range want {
		fields := strings.Fields(lines[i])
		if len(fields) < 2 {
			t.Fatalf("-list line %d has no doc string: %q", i, lines[i])
		}
		if fields[0] != name {
			t.Errorf("-list line %d names %q, want %q", i, fields[0], name)
		}
	}
}
