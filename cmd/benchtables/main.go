// Command benchtables regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index).
//
// Usage:
//
//	benchtables                 # all experiments at scaled sizes
//	benchtables -full           # additionally model the paper's sizes
//	benchtables -run fig10a     # one experiment
//	benchtables -list           # list experiment names
//	benchtables -benchjson BENCH_PR6.json  # engine + kernel sweep → JSON
//	benchtables -clusterjson BENCH_PR7.json  # loopback cluster vs single process → JSON
//	benchtables -failoverjson BENCH_PR8.json  # coordinator-kill takeover recovery → JSON
//	benchtables -pagerjson BENCH_PR9.json  # out-of-core resident sweep + kill recovery → JSON
//	benchtables -calibrate scripts/kernel_calibration.txt  # per-kernel costs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"cellnpdp/internal/harness"
	"cellnpdp/internal/kernel"
	"cellnpdp/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtables: ")
	var (
		full    = flag.Bool("full", false, "include paper-size (4096-16384) modeled runs and larger measured sizes")
		run     = flag.String("run", "", "run a single experiment by name")
		list    = flag.Bool("list", false, "list experiment names and exit")
		workers = flag.Int("workers", 0, "CPU workers for measured runs (0 = min(GOMAXPROCS, 8))")
		seed    = flag.Int64("seed", 1, "workload seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables (with -run)")
		bench   = flag.String("benchjson", "", "run the parallel-engine benchmark sweep (workers × engine ablations, -benchmem style) and write the JSON report to this path")
		cbench  = flag.String("clusterjson", "", "run the loopback-cluster sweep (worker counts + kill recovery, verified bit-identical) and write the JSON report to this path")
		fbench  = flag.String("failoverjson", "", "run the coordinator-kill warm-standby takeover (verified bit-identical) and write the recovery JSON report to this path")
		pbench  = flag.String("pagerjson", "", "run the out-of-core resident-set sweep vs the I/O lower bound plus kill-mid-spill recovery (verified bit-identical) and write the JSON report to this path")
		calib   = flag.String("calibrate", "", "measure this machine's per-kernel stage-1 costs and write the calibration file (normally scripts/kernel_calibration.txt) to this path")
	)
	flag.Parse()

	if *calib != "" {
		cal := perfmodel.Calibrate(nil)
		if err := os.WriteFile(*calib, []byte(perfmodel.FormatCalibration(cal)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%s/%s)\n", *calib, cal.Arch, cal.ISA)
		return
	}
	// Best-effort: a persisted calibration sharpens PickKernel for the
	// measured runs; defaults stay active when the file or section is
	// missing.
	if _, err := perfmodel.LoadCalibrationFile("scripts/kernel_calibration.txt", runtime.GOARCH, kernel.VectorISA()); err != nil {
		log.Print(err)
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-14s %s\n", e.Name, e.Desc)
		}
		return
	}
	cfg := harness.Config{Full: *full, Workers: *workers, Seed: *seed, Out: os.Stdout}
	if *bench != "" {
		if err := harness.WriteBenchJSON(cfg, *bench); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *bench)
		return
	}
	if *cbench != "" {
		if err := harness.WriteClusterBenchJSON(cfg, *cbench); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *cbench)
		return
	}
	if *fbench != "" {
		if err := harness.WriteFailoverBenchJSON(cfg, *fbench); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *fbench)
		return
	}
	if *pbench != "" {
		if err := harness.WriteOutOfCoreBenchJSON(cfg, *pbench); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *pbench)
		return
	}
	if *run != "" {
		e, ok := harness.Lookup(*run)
		if !ok {
			log.Fatalf("unknown experiment %q (use -list)", *run)
		}
		t, err := e.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t)
		}
		return
	}
	if err := harness.RunAll(cfg); err != nil {
		log.Fatal(err)
	}
}
