// Command cellnpdp solves a seeded NPDP instance with a chosen engine and
// reports timing, work counts and (for the cell engine) the modeled QS20
// execution time and DMA traffic.
//
// Usage:
//
//	cellnpdp -n 2048 -engine parallel -workers 8
//	cellnpdp -n 1024 -engine cell -prec double
//
// The serve subcommand runs the long-running solve service instead
// (admission control, overload protection, result integrity):
//
//	cellnpdp serve -addr 127.0.0.1:8080 -budget 2147483648 -rate 50
//
// The cluster subcommand runs the sharded coordinator/worker solve —
// by default a loopback multi-process cluster, with an optional seeded
// chaos schedule that SIGKILLs workers mid-wavefront:
//
//	cellnpdp cluster -n 2048 -cluster-workers 3 -verify
//	cellnpdp cluster -n 2048 -cluster-workers 3 -chaos-kills 1 -heal -faultrate 0.2 -verify
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"cellnpdp"
	"cellnpdp/internal/cachesim"
	"cellnpdp/internal/tableio"
	"cellnpdp/internal/tri"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cellnpdp: ")
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "cluster" {
		if err := runCluster(os.Args[2:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	var (
		n       = flag.Int("n", 1024, "problem size (DP points)")
		engine  = flag.String("engine", "parallel", "engine: serial, tiled, parallel or cell")
		workers = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		block   = flag.Int("block", 32*1024, "memory-block budget in bytes")
		prec    = flag.String("prec", "single", "precision: single or double")
		seed    = flag.Int64("seed", 1, "workload seed")
		save    = flag.String("save", "", "write the solved table to this file")
		check   = flag.String("check", "", "compare the solved table against this saved file")

		timeout    = flag.Duration("timeout", 0, "abort the solve after this duration (0 = no limit)")
		checkpoint = flag.String("checkpoint", "", "parallel engine: snapshot completed work to this file")
		ckEvery    = flag.Int("checkpoint-every", 0, "snapshot period in completed tasks (0 = default 16)")
		resume     = flag.String("resume", "", "parallel engine: resume from this checkpoint file")
		faultRate  = flag.Float64("faultrate", 0, "parallel engine: inject transient faults at this per-attempt rate")
		faultSeed  = flag.Int64("faultseed", 1, "fault-injection seed (deterministic per seed)")
		faultKinds = flag.String("faultkinds", "", "comma-separated injected fault kinds: error, panic, delay, corrupt (empty = error)")
		retries    = flag.Int("retries", 3, "parallel engine: max retries per task for transient failures")
		fallback   = flag.Bool("fallback", true, "degrade parallel failures to the serial tiled engine")
		heal       = flag.Bool("heal", false, "seal completed blocks and recompute the poisoned cone on corruption")
		healMax    = flag.Int("heal-attempts", 0, "max poisoned-cone recompute rounds (0 = engine default)")
		auditEvery = flag.Int("audit-every", 0, "parallel engine: re-verify block seals every N task executions (0 = post-solve only)")

		memBudget     = flag.Int64("memory-budget", 0, "run out of core: cap the resident block working set at roughly this many bytes (tiled/parallel engines)")
		spill         = flag.String("spill", "", "out of core: spill file path (persists for -resume-spill; empty = private temp)")
		resumeSpill   = flag.Bool("resume-spill", false, "resume a paged solve from the committed spill index at -spill")
		diskFaultRate = flag.Float64("disk-faultrate", 0, "out of core: inject disk faults into spill I/O at this per-operation rate")
		diskFaultSeed = flag.Int64("disk-faultseed", 1, "disk-fault-injection seed (deterministic per seed)")
		diskFaults    = flag.String("disk-faultkinds", "", "comma-separated injected disk fault kinds: eio, torn, flip, enospc (empty = all)")
	)
	flag.Parse()

	eng, err := parseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}
	// Out-of-range resilience knobs fail loudly here instead of being
	// silently accepted or clamped downstream.
	if *faultRate < 0 || *faultRate > 1 {
		log.Fatalf("-faultrate must be in [0, 1], got %g", *faultRate)
	}
	if *retries < 0 {
		log.Fatalf("-retries must be non-negative, got %d", *retries)
	}
	if *ckEvery < 0 {
		log.Fatalf("-checkpoint-every must be non-negative, got %d", *ckEvery)
	}
	if *healMax < 0 {
		log.Fatalf("-heal-attempts must be non-negative, got %d", *healMax)
	}
	if *auditEvery < 0 {
		log.Fatalf("-audit-every must be non-negative, got %d", *auditEvery)
	}
	if *diskFaultRate < 0 || *diskFaultRate > 1 {
		log.Fatalf("-disk-faultrate must be in [0, 1], got %g", *diskFaultRate)
	}
	if *memBudget < 0 {
		log.Fatalf("-memory-budget must be non-negative, got %d", *memBudget)
	}
	opts := cellnpdp.Options{
		Engine: eng, Workers: *workers, BlockBytes: *block,
		MaxRetries: *retries, FaultRate: *faultRate, FaultSeed: *faultSeed,
		FaultKinds:     *faultKinds,
		CheckpointPath: *checkpoint, CheckpointEvery: *ckEvery, ResumePath: *resume,
		NoFallback: !*fallback, Logf: log.Printf,
		Heal: *heal, HealAttempts: *healMax, AuditEvery: *auditEvery,
		MemoryBudget: *memBudget, SpillPath: *spill, ResumeSpill: *resumeSpill,
		DiskFaultRate: *diskFaultRate, DiskFaultSeed: *diskFaultSeed, DiskFaultKinds: *diskFaults,
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	io := fileOps{save: *save, check: *check}
	switch *prec {
	case "single":
		if err := run[float32](ctx, *n, *seed, opts, io); err != nil {
			log.Fatal(err)
		}
	case "double":
		if err := run[float64](ctx, *n, *seed, opts, io); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown precision %q (want single or double)", *prec)
	}
}

// fileOps carries the optional save/check actions.
type fileOps struct {
	save  string
	check string
}

func parseEngine(s string) (cellnpdp.Engine, error) {
	switch s {
	case "serial":
		return cellnpdp.Serial, nil
	case "tiled":
		return cellnpdp.Tiled, nil
	case "parallel":
		return cellnpdp.Parallel, nil
	case "cell":
		return cellnpdp.Cell, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want serial, tiled, parallel or cell)", s)
}

func run[E cellnpdp.Elem](ctx context.Context, n int, seed int64, opts cellnpdp.Options, io fileOps) error {
	tbl, err := cellnpdp.NewTable[E](n)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i+1 < n; i++ {
		if err := tbl.Set(i, i+1, E(1+rng.Float64()*99)); err != nil {
			return err
		}
	}
	res, err := cellnpdp.SolveCtx(ctx, tbl, opts)
	if err != nil {
		return err
	}
	if res.ResumedTasks > 0 {
		src := opts.ResumePath
		if res.Paged {
			src = opts.SpillPath
		}
		fmt.Printf("resumed %d tasks from %s\n", res.ResumedTasks, src)
	}
	if res.Paged && res.PagerStats != nil {
		ps := res.PagerStats
		fmt.Printf("paged spilled_blocks=%d spilled_bytes=%d fetched_blocks=%d fetched_bytes=%d pristine_bytes=%d faulted_pages=%d page_heals=%d enospc_degradations=%d resident_peak=%d\n",
			ps.SpilledBlocks, ps.SpilledBytes, ps.FetchedBlocks, ps.FetchedBytes, ps.PristineBytes,
			ps.FaultedPages, ps.PageHeals, ps.ENOSPCDegradations, ps.ResidentPeak)
		var e E
		if bound := cachesim.IOLowerBound(n, tableio.ElemWidth(e), opts.MemoryBudget); bound > 0 {
			achieved := ps.DiskBytes()
			fmt.Printf("paged disk traffic: achieved=%d bytes, io_lower_bound=%d bytes (ratio %.2f)\n",
				achieved, bound, float64(achieved)/float64(bound))
		}
	}
	if res.Degraded {
		fmt.Printf("degraded to tiled engine: %s\n", res.DegradedReason)
	}
	if res.CorruptBlocks > 0 {
		fmt.Printf("detected %d corrupt blocks; %d heal rounds recomputed %d tasks", res.CorruptBlocks, res.HealRounds, res.RecomputedTasks)
		if res.HealFallback {
			fmt.Printf(" (pristine-restart fallback used)")
		}
		fmt.Printf("\n")
	}
	// A stable checksum so different engines can be diffed from the shell.
	var sum float64
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			v, err := tbl.At(i, j)
			if err != nil {
				return err
			}
			if float64(v) < 1e29 {
				sum += float64(v)
			}
		}
	}
	if io.save != "" || io.check != "" {
		solved := tri.NewRowMajor[E](n)
		for j := 0; j < n; j++ {
			for i := 0; i <= j; i++ {
				v, err := tbl.At(i, j)
				if err != nil {
					return err
				}
				solved.Set(i, j, v)
			}
		}
		if io.save != "" {
			f, err := os.Create(io.save)
			if err != nil {
				return err
			}
			if err := tableio.Write(f, solved); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("saved solved table to %s\n", io.save)
		}
		if io.check != "" {
			f, err := os.Open(io.check)
			if err != nil {
				return err
			}
			defer f.Close()
			want, err := tableio.Read[E](f)
			if err != nil {
				return err
			}
			if i, j, av, bv, diff := tri.FirstDiff[E](want, solved); diff {
				return fmt.Errorf("mismatch against %s at (%d,%d): file %v vs computed %v", io.check, i, j, av, bv)
			}
			fmt.Printf("verified against %s: identical\n", io.check)
		}
	}
	top, _ := tbl.At(0, n-1)
	fmt.Fprintf(os.Stdout, "engine=%v n=%d relaxations=%d wall=%.3fs\n", res.Engine, n, res.Relaxations, res.WallSeconds)
	if res.Engine == cellnpdp.Cell {
		fmt.Fprintf(os.Stdout, "modeled QS20 time=%.6fs dma=%d bytes\n", res.ModeledSeconds, res.DMABytes)
	}
	fmt.Fprintf(os.Stdout, "d[0][n-1]=%v checksum=%.6g\n", top, sum)
	return nil
}
