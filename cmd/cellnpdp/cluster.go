package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cellnpdp/internal/cluster"
	"cellnpdp/internal/npdp"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

// runCluster is the `cellnpdp cluster` subcommand: the sharded
// coordinator/worker solve (see internal/cluster). Four modes:
//
//	loopback    (default) — coordinator plus -cluster-workers local
//	            worker processes on a loopback port; the one-command
//	            multi-process solve and the chaos harness's home
//	coordinator — coordinator only; workers join from elsewhere.
//	            -replica streams its completion log to a warm standby
//	worker      — one worker dialing -connect (a comma-separated
//	            rotation list: "primary,standby")
//	standby     — warm standby: tails a primary's replication stream
//	            and takes over the solve when the lease expires
//
// Loopback mode carries the deterministic chaos harness: -chaos-kills
// SIGKILLs workers mid-wavefront on a seeded completion schedule,
// -chaos-kill-coordinator runs the primary as a subprocess under an
// in-process warm standby and SIGKILLs it mid-wavefront, and
// -faultrate arms every worker's silent-corruption injector with a
// shared seed so the corrupted task set is schedule-independent.
func runCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	var (
		mode    = fs.String("mode", "loopback", "loopback, coordinator, worker or standby")
		addr    = fs.String("addr", "127.0.0.1:0", "coordinator/standby listen address")
		connect = fs.String("connect", "", "worker mode: coordinator address(es) to dial, comma-separated")
		name    = fs.String("name", "worker", "worker mode: name in coordinator logs")

		n         = fs.Int("n", 1024, "problem size (DP points)")
		seed      = fs.Int64("seed", 1, "workload seed")
		prec      = fs.String("prec", "single", "precision: single or double")
		block     = fs.Int("block", 32*1024, "memory-block budget in bytes (sets the tile)")
		schedSide = fs.Int("sched-side", 1, "scheduling-block side g in memory blocks")

		workers  = fs.Int("cluster-workers", 2, "loopback: worker processes to spawn")
		shards   = fs.Int("shards", 0, "column shards (0 = worker count)")
		hbEvery  = fs.Duration("heartbeat", 0, "heartbeat period (0 = default)")
		deadline = fs.Duration("deadline", 0, "silent-worker death deadline (0 = default)")
		orphanT  = fs.Duration("workerless", 0, "max wait with zero live workers (0 = default)")

		heal       = fs.Bool("heal", false, "recompute the poisoned cone when a boundary block fails its seal audit")
		healMax    = fs.Int("heal-attempts", 0, "max consecutive seal failures of one block before the pristine restart (0 = default)")
		checkpoint = fs.String("checkpoint", "", "snapshot completed work to this file")
		ckEvery    = fs.Int("checkpoint-every", 0, "snapshot period in accepted tasks (0 = final snapshot only)")
		resume     = fs.Bool("resume", false, "resume from -checkpoint when it holds a matching snapshot")

		faultRate = fs.Float64("faultrate", 0, "worker-side silent-corruption rate per (task, generation)")
		faultSeed = fs.Int64("faultseed", 1, "corruption-injection seed (loopback shares it across workers)")

		chaosKills = fs.Int("chaos-kills", 0, "loopback: SIGKILL this many workers mid-wavefront")
		chaosSeed  = fs.Int64("chaos-seed", 1, "seed of the kill schedule (completion counts and victims)")
		restart    = fs.Bool("restart", true, "loopback: respawn each killed worker after a short delay")

		replica    = fs.String("replica", "", "coordinator/loopback: stream the completion log to this warm-standby address")
		lease      = fs.Duration("lease", 0, "standby: silence tolerated before takeover (0 = 2x deadline)")
		maxReconn  = fs.Int("max-reconnects", 0, "worker: failed attempts tolerated per coordinator address (0 = default)")
		chaosCoord = fs.Bool("chaos-kill-coordinator", false,
			"loopback: run the coordinator as a subprocess replicating to an in-process standby, SIGKILL it mid-wavefront")

		spill     = fs.String("spill", "", "coordinator/loopback: page the authoritative table to this spill file")
		memBudget = fs.Int64("memory-budget", 0, "coordinator/loopback: resident-set budget in bytes for the paged table (requires -spill)")

		verify  = fs.Bool("verify", false, "re-solve with the serial engine and require bit-identity")
		timeout = fs.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *faultRate < 0 || *faultRate > 1 {
		return fmt.Errorf("-faultrate must be in [0, 1], got %g", *faultRate)
	}
	if *memBudget < 0 {
		return fmt.Errorf("-memory-budget must be non-negative, got %d", *memBudget)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *mode == "worker" {
		if *connect == "" {
			return fmt.Errorf("worker mode needs -connect")
		}
		var inject *resilience.Injector
		if *faultRate > 0 {
			inject = &resilience.Injector{
				Rate: *faultRate, Seed: *faultSeed,
				Kinds: []resilience.FaultKind{resilience.FaultCorrupt},
			}
		}
		return cluster.RunWorker(ctx, *connect, cluster.WorkerOptions{
			Name: *name, Inject: inject, MaxReconnects: *maxReconn, Logf: log.Printf,
		})
	}

	cfg := clusterConfig{
		mode: *mode, addr: *addr, n: *n, seed: *seed, block: *block,
		schedSide: *schedSide, workers: *workers, shards: *shards,
		hbEvery: *hbEvery, deadline: *deadline, workerless: *orphanT,
		heal: *heal, healMax: *healMax,
		checkpoint: *checkpoint, ckEvery: *ckEvery, resume: *resume,
		faultRate: *faultRate, faultSeed: *faultSeed,
		chaosKills: *chaosKills, chaosSeed: *chaosSeed, restartKilled: *restart,
		replica: *replica, lease: *lease, maxReconnects: *maxReconn, chaosCoord: *chaosCoord,
		spill: *spill, memBudget: *memBudget,
		verify: *verify,
	}
	switch *prec {
	case "single":
		return clusterSolve[float32](ctx, cfg)
	case "double":
		return clusterSolve[float64](ctx, cfg)
	}
	return fmt.Errorf("unknown precision %q (want single or double)", *prec)
}

type clusterConfig struct {
	mode          string
	addr          string
	n             int
	seed          int64
	block         int
	schedSide     int
	workers       int
	shards        int
	hbEvery       time.Duration
	deadline      time.Duration
	workerless    time.Duration
	heal          bool
	healMax       int
	checkpoint    string
	ckEvery       int
	resume        bool
	faultRate     float64
	faultSeed     int64
	chaosKills    int
	chaosSeed     int64
	restartKilled bool
	replica       string
	lease         time.Duration
	maxReconnects int
	chaosCoord    bool
	spill         string
	memBudget     int64
	verify        bool
}

// clusterSolve runs coordinator or loopback mode at one element type.
func clusterSolve[E semiring.Elem](ctx context.Context, cfg clusterConfig) error {
	precName := "single"
	var e E
	prec := npdp.Single
	if _, isF64 := any(e).(float64); isF64 {
		prec, precName = npdp.Double, "double"
	}
	tile, err := npdp.DefaultTile(cfg.block, prec)
	if err != nil {
		return err
	}
	src := workload.Chain[E](cfg.n, cfg.seed)
	tbl := tri.ToTiled(src, tile)

	if cfg.mode == "standby" {
		return standbySolve(ctx, cfg, tbl)
	}
	if cfg.mode == "loopback" && cfg.chaosCoord {
		return chaosCoordinatorKill(ctx, cfg, tbl, tile, precName)
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// Stdout, not the log: scripts parse this line for the bound port.
	fmt.Printf("coordinating on %s\n", ln.Addr())

	shards := cfg.shards
	if shards <= 0 {
		shards = cfg.workers
	}
	var stats cluster.Stats
	opts := cluster.Options{
		Shards: shards, SchedSide: cfg.schedSide,
		HeartbeatEvery: cfg.hbEvery, DeadlineAfter: cfg.deadline, WorkerlessAfter: cfg.workerless,
		Heal: cfg.heal, HealAttempts: cfg.healMax,
		CheckpointPath: cfg.checkpoint, CheckpointEvery: cfg.ckEvery, Resume: cfg.resume,
		ReplicaAddr: cfg.replica,
		SpillPath:   cfg.spill, MemoryBudget: cfg.memBudget,
		Stats: &stats, Logf: log.Printf,
	}

	var fleet *workerFleet
	if cfg.mode == "loopback" {
		fleet = newWorkerFleet(ln.Addr().String(), cfg, precName)
		defer fleet.reap()
		for i := 0; i < cfg.workers; i++ {
			if err := fleet.spawn(); err != nil {
				return err
			}
		}
		if cfg.chaosKills > 0 {
			m := (cfg.n + tile - 1) / tile
			g, err := sched.NewGraph(m, max(1, cfg.schedSide))
			if err != nil {
				return err
			}
			opts.OnTaskDone = fleet.chaosHook(len(g.Tasks), cfg.chaosKills, cfg.chaosSeed, cfg.restartKilled)
		}
	} else if cfg.mode != "coordinator" {
		ln.Close()
		return fmt.Errorf("unknown mode %q (want loopback, coordinator, worker or standby)", cfg.mode)
	}

	start := time.Now()
	err = cluster.Coordinate(ctx, ln, tbl, opts)
	printClusterStats(&stats, time.Since(start))
	if err != nil {
		return err
	}
	return verifyAgainstSerial(cfg, tbl)
}

// printClusterStats emits the parseable end-of-run counter line.
func printClusterStats(stats *cluster.Stats, wall time.Duration) {
	fmt.Printf("cluster: tasks=%d resumed=%d peak_workers=%d deaths=%d redispatched=%d mismatches=%d stale=%d healrounds=%d recomputed=%d restarts=%d blocks=%d bytes=%d epoch=%d fenced=%d failovers=%d repl_records=%d repl_resyncs=%d wall=%.3fs\n",
		stats.Tasks, stats.Resumed, stats.PeakWorkers, stats.WorkerDeaths, stats.Redispatched,
		stats.SealMismatches, stats.StaleResults, stats.HealRounds, stats.RecomputedTasks,
		stats.PristineRestarts, stats.BlocksStreamed, stats.BytesStreamed,
		stats.Epoch, stats.FencedWrites, stats.Failovers, stats.ReplRecords, stats.ReplResyncs,
		wall.Seconds())
	if ps := stats.PagerStats; ps != nil {
		fmt.Printf("cluster paged: spilled_blocks=%d spilled_bytes=%d fetched_blocks=%d fetched_bytes=%d faulted_pages=%d page_heals=%d resident_peak=%d\n",
			ps.SpilledBlocks, ps.SpilledBytes, ps.FetchedBlocks, ps.FetchedBytes,
			ps.FaultedPages, ps.PageHeals, ps.ResidentPeak)
	}
}

// verifyAgainstSerial re-solves the workload with the serial engine and
// requires bit-identity when -verify is set.
func verifyAgainstSerial[E semiring.Elem](cfg clusterConfig, tbl *tri.Tiled[E]) error {
	if !cfg.verify {
		return nil
	}
	ref := workload.Chain[E](cfg.n, cfg.seed)
	npdp.SolveSerial(ref)
	if i, j, av, bv, diff := tri.FirstDiff[E](ref, tbl); diff {
		return fmt.Errorf("cluster result diverges from serial engine at (%d,%d): serial %v vs cluster %v", i, j, av, bv)
	}
	fmt.Printf("verified against serial engine: identical\n")
	return nil
}

// standbySolve is `-mode standby`: tail a primary's replication stream
// and, if its lease expires, take the solve over at a bumped epoch. On
// a clean primary finish the replicated table still lands here, so
// -verify works in both outcomes.
func standbySolve[E semiring.Elem](ctx context.Context, cfg clusterConfig, tbl *tri.Tiled[E]) error {
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// Stdout, not the log: scripts parse this line for the bound port.
	fmt.Printf("standing by on %s\n", ln.Addr())

	var stats cluster.Stats
	var sstats cluster.StandbyStats
	opts := cluster.StandbyOptions{
		Options: cluster.Options{
			// Geometry (shards, scheduling side, heartbeat, deadline) is
			// adopted from the primary's replication hello at takeover;
			// these only seed the pre-adoption defaults.
			Shards: cfg.shards, SchedSide: cfg.schedSide,
			HeartbeatEvery: cfg.hbEvery, DeadlineAfter: cfg.deadline, WorkerlessAfter: cfg.workerless,
			Heal: cfg.heal, HealAttempts: cfg.healMax,
			CheckpointPath: cfg.checkpoint, CheckpointEvery: cfg.ckEvery,
			Stats: &stats, Logf: log.Printf,
		},
		LeaseAfter: cfg.lease,
		OnTakeover: func(epoch uint32) {
			// Stdout: the chaos smoke greps for this exact prefix.
			fmt.Printf("standby: takeover epoch=%d\n", epoch)
		},
		StandbyStats: &sstats,
	}
	start := time.Now()
	err = cluster.RunStandby(ctx, ln, tbl, opts)
	if sstats.TookOver {
		printClusterStats(&stats, time.Since(start))
	} else {
		fmt.Printf("standby: primary finished clean: replicated=%d records=%d resyncs=%d fenced=%d wall=%.3fs\n",
			sstats.ReplicatedTasks, sstats.Records, sstats.Resyncs, sstats.FencedWrites,
			time.Since(start).Seconds())
	}
	if err != nil {
		return err
	}
	return verifyAgainstSerial(cfg, tbl)
}

// chaosCoordinatorKill is `-chaos-kill-coordinator`: the coordinator
// runs as a SUBPROCESS replicating to an in-process warm standby, so a
// real SIGKILL lands on a real process mid-wavefront. The kill is keyed
// on REPLICATED progress (the standby's delta count), proving the
// takeover resumes from genuinely shipped state; workers dial the
// "primary,standby" rotation list and re-home through the epoch fence.
// The run FAILS if the primary finishes before the kill fires — a
// chaos run that never exercised failover proves nothing.
func chaosCoordinatorKill[E semiring.Elem](ctx context.Context, cfg clusterConfig, tbl *tri.Tiled[E], tile int, precName string) error {
	sbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	sbAddr := sbLn.Addr().String()

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	pri := exec.Command(exe, primaryArgs(cfg, sbAddr, precName)...)
	pri.Stderr = os.Stderr
	priOut, err := pri.StdoutPipe()
	if err != nil {
		return err
	}
	if err := pri.Start(); err != nil {
		return err
	}
	defer func() {
		pri.Process.Kill()
		pri.Wait()
	}()

	// Forward the primary's stdout, capturing its bound address.
	addrC := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(priOut)
		for sc.Scan() {
			line := sc.Text()
			if a, ok := strings.CutPrefix(line, "coordinating on "); ok {
				select {
				case addrC <- a:
				default:
				}
			}
			fmt.Printf("primary: %s\n", line)
		}
	}()
	var priAddr string
	select {
	case priAddr = <-addrC:
	case <-time.After(15 * time.Second):
		return fmt.Errorf("primary coordinator never reported its address")
	case <-ctx.Done():
		return ctx.Err()
	}

	m := (cfg.n + tile - 1) / tile
	g, err := sched.NewGraph(m, max(1, cfg.schedSide))
	if err != nil {
		return err
	}
	// Kill inside the first half of the wavefront, but only after real
	// progress has been replicated.
	killAfter := max(3, len(g.Tasks)/10)

	wcfg := cfg
	if wcfg.maxReconnects <= 0 {
		// Workers must survive the whole leaderless window (primary dead,
		// lease still ticking) on their rotation budget.
		wcfg.maxReconnects = 100
	}
	fleet := newWorkerFleet(priAddr+","+sbAddr, wcfg, precName)
	defer fleet.reap()
	for i := 0; i < cfg.workers; i++ {
		if err := fleet.spawn(); err != nil {
			return err
		}
	}

	var killOnce sync.Once
	var stats cluster.Stats
	var sstats cluster.StandbyStats
	opts := cluster.StandbyOptions{
		Options: cluster.Options{
			Shards: cfg.shards, SchedSide: cfg.schedSide,
			HeartbeatEvery: cfg.hbEvery, DeadlineAfter: cfg.deadline, WorkerlessAfter: cfg.workerless,
			Heal: cfg.heal, HealAttempts: cfg.healMax,
			Stats: &stats, Logf: log.Printf,
		},
		LeaseAfter: cfg.lease,
		OnDelta: func(done int) {
			if done >= killAfter {
				killOnce.Do(func() {
					log.Printf("cluster: chaos SIGKILL of coordinator (pid %d) after %d replicated tasks",
						pri.Process.Pid, done)
					pri.Process.Kill()
				})
			}
		},
		OnTakeover: func(epoch uint32) {
			// Stdout: the chaos smoke greps for this exact prefix.
			fmt.Printf("standby: takeover epoch=%d\n", epoch)
		},
		StandbyStats: &sstats,
	}
	if cfg.chaosKills > 0 {
		// PR 7 worker chaos rides along: the hook is wired to the
		// takeover coordinator, so these kills land post-failover, while
		// the resumed wavefront is in flight.
		opts.Options.OnTaskDone = fleet.chaosHook(len(g.Tasks), cfg.chaosKills, cfg.chaosSeed, cfg.restartKilled)
	}

	start := time.Now()
	err = cluster.RunStandby(ctx, sbLn, tbl, opts)
	printClusterStats(&stats, time.Since(start))
	if err != nil {
		return err
	}
	if !sstats.TookOver {
		return fmt.Errorf("chaos: primary finished before the coordinator kill fired (replicated=%d of %d tasks); nothing was proven",
			sstats.ReplicatedTasks, len(g.Tasks))
	}
	return verifyAgainstSerial(cfg, tbl)
}

// primaryArgs rebuilds the subprocess command line for the primary
// coordinator of a -chaos-kill-coordinator run.
func primaryArgs(cfg clusterConfig, sbAddr, prec string) []string {
	shards := cfg.shards
	if shards <= 0 {
		shards = cfg.workers
	}
	args := []string{"cluster", "-mode", "coordinator",
		"-addr", "127.0.0.1:0", "-replica", sbAddr,
		"-n", strconv.Itoa(cfg.n), "-seed", strconv.FormatInt(cfg.seed, 10),
		"-prec", prec, "-block", strconv.Itoa(cfg.block),
		"-sched-side", strconv.Itoa(cfg.schedSide), "-shards", strconv.Itoa(shards),
	}
	if cfg.hbEvery > 0 {
		args = append(args, "-heartbeat", cfg.hbEvery.String())
	}
	if cfg.deadline > 0 {
		args = append(args, "-deadline", cfg.deadline.String())
	}
	if cfg.workerless > 0 {
		args = append(args, "-workerless", cfg.workerless.String())
	}
	if cfg.heal {
		args = append(args, "-heal")
		if cfg.healMax > 0 {
			args = append(args, "-heal-attempts", strconv.Itoa(cfg.healMax))
		}
	}
	return args
}

// workerFleet owns the loopback worker subprocesses: spawning, the
// seeded SIGKILL schedule, respawns, and end-of-run reaping.
type workerFleet struct {
	addr     string
	cfg      clusterConfig
	prec     string
	mu       sync.Mutex
	next     int
	procs    map[int]*exec.Cmd
	killable []int // spawn order of live, not-yet-killed workers
}

func newWorkerFleet(addr string, cfg clusterConfig, prec string) *workerFleet {
	return &workerFleet{addr: addr, cfg: cfg, prec: prec, procs: map[int]*exec.Cmd{}}
}

// spawn re-executes this binary as `cluster -mode worker`.
func (f *workerFleet) spawn() error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	id := f.next
	f.next++
	args := []string{"cluster", "-mode", "worker",
		"-connect", f.addr, "-name", "w" + strconv.Itoa(id)}
	if f.cfg.maxReconnects > 0 {
		args = append(args, "-max-reconnects", strconv.Itoa(f.cfg.maxReconnects))
	}
	if f.cfg.faultRate > 0 {
		// Every worker shares the seed, so which (task, generation)
		// attempts corrupt does not depend on who computes them.
		args = append(args,
			"-faultrate", strconv.FormatFloat(f.cfg.faultRate, 'g', -1, 64),
			"-faultseed", strconv.FormatInt(f.cfg.faultSeed, 10))
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	f.procs[id] = cmd
	f.killable = append(f.killable, id)
	log.Printf("cluster: spawned worker w%d (pid %d)", id, cmd.Process.Pid)
	return nil
}

// chaosHook builds the OnTaskDone callback implementing the seeded kill
// schedule: kill k workers at completion counts drawn from the first
// half of the wavefront, victims drawn from the live set. The hook runs
// on the coordinator's event loop, so the SIGKILL happens off it.
func (f *workerFleet) chaosHook(tasks, kills int, seed int64, respawn bool) func(int, sched.Task) {
	rng := rand.New(rand.NewSource(seed))
	span := max(2, tasks/2)
	killAt := make([]int, kills)
	for i := range killAt {
		killAt[i] = 1 + rng.Intn(span)
	}
	sort.Ints(killAt)
	victims := make([]int, kills)
	for i := range victims {
		victims[i] = rng.Int()
	}
	var mu sync.Mutex
	nextKill := 0
	return func(completed int, _ sched.Task) {
		mu.Lock()
		defer mu.Unlock()
		for nextKill < len(killAt) && completed >= killAt[nextKill] {
			draw := victims[nextKill]
			nextKill++
			//nolint:npdplint(gospawn) fire-and-forget chaos SIGKILL: one bounded sleep and a signal, reaped with the fleet at process exit
			go f.kill(draw, respawn)
		}
	}
}

// kill SIGKILLs one live worker chosen by draw and optionally respawns a
// replacement after a beat — long enough for the death to be observed,
// short enough to land inside the same wavefront.
func (f *workerFleet) kill(draw int, respawn bool) {
	f.mu.Lock()
	if len(f.killable) == 0 {
		f.mu.Unlock()
		return
	}
	idx := f.killable[draw%len(f.killable)]
	f.killable = remove(f.killable, idx)
	cmd := f.procs[idx]
	f.mu.Unlock()
	log.Printf("cluster: chaos SIGKILL of worker w%d (pid %d)", idx, cmd.Process.Pid)
	cmd.Process.Kill()
	if respawn {
		time.Sleep(300 * time.Millisecond)
		if err := f.spawn(); err != nil {
			log.Printf("cluster: respawning after chaos kill: %v", err)
		}
	}
}

func remove(s []int, v int) []int {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// reap waits for every worker process, escalating to SIGKILL for any
// that outlives the coordinator by more than a grace period.
func (f *workerFleet) reap() {
	f.mu.Lock()
	procs := make([]*exec.Cmd, 0, len(f.procs))
	for _, cmd := range f.procs {
		procs = append(procs, cmd)
	}
	f.mu.Unlock()
	for _, cmd := range procs {
		done := make(chan struct{})
		go func(cmd *exec.Cmd) {
			cmd.Wait()
			close(done)
		}(cmd)
		select {
		case <-done:
		case <-time.After(3 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
}
