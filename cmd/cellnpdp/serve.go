package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cellnpdp/internal/serve"
)

// runServe is the `cellnpdp serve` subcommand: the long-running solve
// service with admission control, overload protection and end-to-end
// result integrity (see internal/serve). It listens until SIGTERM or
// SIGINT, then drains: admission stops, in-flight solves finish, the
// per-outcome summary prints, and the process exits 0.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		budget  = fs.Int64("budget", 0, "admission memory budget in bytes (0 = 4 GiB)")
		queue   = fs.Int("queue", 0, "admission queue depth (0 = 8, negative = no queue)")
		rate    = fs.Float64("rate", 0, "request rate limit per second (0 = unlimited)")
		burst   = fs.Int("burst", 0, "rate-limit burst (0 = ceil(rate))")
		dead    = fs.Duration("deadline", 0, "default per-request deadline (0 = 30s)")
		workers = fs.Int("workers", 0, "solver workers per request (0 = GOMAXPROCS)")
		block   = fs.Int("block", 0, "memory-block budget in bytes (0 = 32 KiB)")
		retries = fs.Int("retries", 0, "max retries per task (0 = 3, negative = none)")
		maxN    = fs.Int("maxn", 0, "largest accepted problem size (0 = 16384)")
		brkN    = fs.Int("breaker-threshold", 0, "parallel failures before the circuit opens (0 = 3)")
		brkCool = fs.Duration("breaker-cooldown", 0, "circuit-open time before a half-open probe (0 = 5s)")
		predict = fs.Float64("predict-factor", 0, "calibration factor on model-predicted solve time (0 = 1)")
		samples = fs.Int("residual-samples", 0, "cells re-checked against the recurrence per response (0 = 64)")
		drainT  = fs.Duration("drain-timeout", time.Minute, "max time to wait for in-flight solves on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := serve.New(serve.Config{
		Workers:          *workers,
		BlockBytes:       *block,
		MaxRetries:       *retries,
		BudgetBytes:      *budget,
		QueueDepth:       *queue,
		RatePerSec:       *rate,
		Burst:            *burst,
		DefaultDeadline:  *dead,
		MaxN:             *maxN,
		BreakerThreshold: *brkN,
		BreakerCooldown:  *brkCool,
		PredictFactor:    *predict,
		ResidualSamples:  *samples,
		Logf:             log.Printf,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpServer := &http.Server{Handler: srv.Handler()}
	// Stdout, not the log: scripts parse this line for the bound port.
	fmt.Printf("listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sig)
	errc := make(chan error, 1)
	go func() { errc <- httpServer.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("received %v; draining", s)
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainT)
		defer cancel()
		if err := httpServer.Shutdown(ctx); err != nil {
			return fmt.Errorf("draining: %w", err)
		}
		srv.Wait()
		fmt.Printf("drained; outcomes: %s\n", srv.OutcomeSummary())
		return nil
	}
}
