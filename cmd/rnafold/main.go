// Command rnafold predicts RNA secondary structure by free-energy
// minimization, running the Zuker bifurcation layer on a selected NPDP
// engine.
//
// Usage:
//
//	rnafold GGGAAAACCC
//	echo GGGAAAACCC | rnafold
//	rnafold -random 500 -engine parallel
//	rnafold -engine cell -seq GCGCUUCGAAAGCGC   # also prints modeled QS20 time
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cellnpdp"
	"cellnpdp/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rnafold: ")
	var (
		engine  = flag.String("engine", "serial", "engine: serial, tiled, parallel or cell")
		workers = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		seq     = flag.String("seq", "", "sequence (overrides positional argument and stdin)")
		random  = flag.Int("random", 0, "fold a random sequence of this length instead")
		seed    = flag.Int64("seed", 1, "seed for -random")
		full    = flag.Bool("full", false, "use the complete recurrences (multibranch loops, serial)")
		cons    = flag.String("constraints", "", "constraint line: '.' free, 'x' forced unpaired")
	)
	flag.Parse()

	var eng cellnpdp.Engine
	switch *engine {
	case "serial":
		eng = cellnpdp.Serial
	case "tiled":
		eng = cellnpdp.Tiled
	case "parallel":
		eng = cellnpdp.Parallel
	case "cell":
		eng = cellnpdp.Cell
	default:
		log.Fatalf("unknown engine %q", *engine)
	}

	input := *seq
	switch {
	case *random > 0:
		input = workload.RNA(*random, *seed)
	case input == "":
		if flag.NArg() > 0 {
			input = flag.Arg(0)
		} else {
			sc := bufio.NewScanner(os.Stdin)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			var b strings.Builder
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if strings.HasPrefix(line, ">") { // FASTA header
					continue
				}
				b.WriteString(line)
			}
			if err := sc.Err(); err != nil {
				log.Fatal(err)
			}
			input = b.String()
		}
	}
	if input == "" {
		log.Fatal("no sequence given (argument, -seq, -random or stdin)")
	}

	var res *cellnpdp.FoldResult
	var err2 error
	if *full {
		res, err2 = cellnpdp.FoldRNAFull(input)
	} else {
		res, err2 = cellnpdp.FoldRNA(input, cellnpdp.FoldOptions{Engine: eng, Workers: *workers, Constraints: *cons})
	}
	if err2 != nil {
		log.Fatal(err2)
	}
	fmt.Println(res.Sequence)
	fmt.Println(res.DotBracket)
	fmt.Printf("MFE = %.2f kcal/mol, %d pairs, engine=%s\n", res.MFE, len(res.Pairs), *engine)
	if res.ModeledCellSeconds > 0 {
		fmt.Printf("modeled QS20 time for the bifurcation layer: %.6f s\n", res.ModeledCellSeconds)
	}
}
