// Command speviz visualizes the reproduction's two timing models:
//
//   - the SPE dual-issue pipeline schedule of the computing-block kernel
//     (Section IV-A's software pipelining, the 54-cycle result), and
//   - a per-SPE Gantt chart of a CellNPDP run on the simulated QS20
//     (compute vs DMA-wait vs idle).
//
// Usage:
//
//	speviz -kernel            # SP and DP kernel schedules
//	speviz -run -n 512 -spes 8 -width 100
package main

import (
	"flag"
	"fmt"
	"log"

	"cellnpdp/internal/cellsim"
	"cellnpdp/internal/npdp"
	"cellnpdp/internal/pipeline"
	"cellnpdp/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("speviz: ")
	var (
		kernel = flag.Bool("kernel", false, "show the computing-block kernel pipeline schedules")
		run    = flag.Bool("run", false, "show a CellNPDP run Gantt chart")
		n      = flag.Int("n", 512, "problem size for -run")
		spes   = flag.Int("spes", 8, "SPE count for -run")
		tile   = flag.Int("tile", 88, "memory-block tile side for -run")
		width  = flag.Int("width", 100, "Gantt width in buckets")
	)
	flag.Parse()
	if !*kernel && !*run {
		*kernel, *run = true, true
	}
	if *kernel {
		showKernels()
	}
	if *run {
		if err := showRun(*n, *spes, *tile, *width); err != nil {
			log.Fatal(err)
		}
	}
}

func showKernels() {
	sp := pipeline.BuildCBStepSP()
	fmt.Println("=== single-precision computing-block step (80 instructions) ===")
	inOrder := pipeline.ScheduleInOrder(sp, pipeline.SinglePrecision())
	fmt.Printf("program order: %d cycles\n%s\n", inOrder.Result.Cycles, inOrder.Timeline())
	listed := pipeline.ScheduleList(sp, pipeline.SinglePrecision())
	fmt.Printf("list-scheduled: %d cycles (steady state %.0f — the paper's 54)\n%s\n",
		listed.Result.Cycles, pipeline.CBStepCyclesSP(), listed.Timeline())

	dp := pipeline.BuildCBStepDP()
	fmt.Println("=== double-precision step (144 instructions, both-pipe DPFP stalls) ===")
	dpSched := pipeline.ScheduleInOrder(dp, pipeline.DoublePrecision())
	fmt.Printf("program order: %d cycles (steady state %.0f)\n%s\n",
		dpSched.Result.Cycles, pipeline.CBStepCyclesDP(), dpSched.Timeline())
}

func showRun(n, spes, tile, width int) error {
	mach, err := cellsim.NewMachine(cellsim.QS20())
	if err != nil {
		return err
	}
	if spes < 1 || spes > len(mach.SPEs) {
		return fmt.Errorf("spes must be in [1,%d]", len(mach.SPEs))
	}
	lg := &trace.Log{}
	opts := npdp.CellOptions{
		Workers:           spes,
		SchedSide:         1,
		UseSIMD:           true,
		DoubleBuffer:      true,
		CBStepCycles:      pipeline.CBStepCyclesSP(),
		ScalarRelaxCycles: npdp.DefaultScalarRelaxCycles,
		Trace:             lg,
	}
	res, err := npdp.ModelCell(n, tile, npdp.Single, mach, opts)
	if err != nil {
		return err
	}
	fmt.Printf("=== CellNPDP n=%d, tile=%d, %d SPEs: modeled %.6fs, %.1f MiB DMA ===\n",
		n, tile, spes, res.Seconds, float64(res.DMA.TotalBytes())/(1<<20))
	fmt.Print(lg.Gantt(width))
	fmt.Println()
	fmt.Print(lg.String())
	return nil
}
