module cellnpdp

go 1.22
