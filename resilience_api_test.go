package cellnpdp_test

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"cellnpdp"
	"cellnpdp/internal/resilience"
)

// chainTable builds the CLI's seeded workload: a weighted chain whose
// optimal substructure exercises every cell.
func chainTable(t *testing.T, n int) *cellnpdp.Table[float32] {
	t.Helper()
	tbl, err := cellnpdp.NewTable[float32](n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < n; i++ {
		if err := tbl.Set(i, i+1, float32(1+(i*7919)%97)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// assertTablesIdentical compares every cell bit for bit.
func assertTablesIdentical(t *testing.T, want, got *cellnpdp.Table[float32], label string) {
	t.Helper()
	n := want.Len()
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			wv, _ := want.At(i, j)
			gv, _ := got.At(i, j)
			if wv != gv {
				t.Fatalf("%s: cell (%d,%d) differs: %v vs %v", label, i, j, gv, wv)
			}
		}
	}
}

// TestSolveWorkersRejectedAllEngines pins the uniform validation: a
// negative worker count is a configuration error on every engine, with
// the engine named in the message.
func TestSolveWorkersRejectedAllEngines(t *testing.T) {
	for _, eng := range []cellnpdp.Engine{cellnpdp.Serial, cellnpdp.Tiled, cellnpdp.Parallel, cellnpdp.Cell} {
		tbl := chainTable(t, 64)
		_, err := cellnpdp.Solve(tbl, cellnpdp.Options{Engine: eng, Workers: -1})
		if err == nil {
			t.Fatalf("%v engine accepted Workers=-1", eng)
		}
	}
}

// TestSolveCtxCancelNoGoroutineLeak cancels parallel solves mid-run and
// asserts (a) the context error surfaces and (b) no worker goroutines
// outlive the call. Run under -race via scripts/ci.sh.
func TestSolveCtxCancelNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for trial := 0; trial < 3; trial++ {
		tbl := chainTable(t, 1600)
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, err := cellnpdp.SolveCtx(ctx, tbl, cellnpdp.Options{Engine: cellnpdp.Parallel, Workers: 4})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("trial %d: cancelled solve returned %v", trial, err)
		}
	}
	// Workers exit before SolveCtx returns; the ctx watcher may need a
	// scheduling round to observe its stop channel.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSolveResumeBitIdentical is the acceptance property: a solve killed
// part-way by injected faults, resumed from its checkpoint, produces a
// table bit-identical to an uninterrupted serial solve.
func TestSolveResumeBitIdentical(t *testing.T) {
	ref := chainTable(t, 400)
	if _, err := cellnpdp.Solve(ref, cellnpdp.Options{Engine: cellnpdp.Serial}); err != nil {
		t.Fatal(err)
	}

	ck := filepath.Join(t.TempDir(), "solve.npck")
	killed := chainTable(t, 400)
	_, err := cellnpdp.Solve(killed, cellnpdp.Options{
		Engine: cellnpdp.Parallel, Workers: 2,
		FaultRate: 0.4, FaultSeed: 5,
		CheckpointPath: ck, CheckpointEvery: 1,
		NoFallback: true,
	})
	var te *resilience.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("faulted run returned %v, want a task-identified failure", err)
	}

	resumed := chainTable(t, 400)
	res, err := cellnpdp.Solve(resumed, cellnpdp.Options{
		Engine: cellnpdp.Parallel, Workers: 2,
		ResumePath: ck,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedTasks == 0 {
		t.Fatal("resume restored no tasks; checkpoint was empty")
	}
	assertTablesIdentical(t, ref, resumed, "resumed vs serial")
}

// TestSolveFaultsRecoverViaRetry asserts the 5%-injection acceptance
// scenario: with retries enabled the parallel engine completes correctly
// without falling back.
func TestSolveFaultsRecoverViaRetry(t *testing.T) {
	ref := chainTable(t, 300)
	if _, err := cellnpdp.Solve(ref, cellnpdp.Options{Engine: cellnpdp.Serial}); err != nil {
		t.Fatal(err)
	}
	faulted := chainTable(t, 300)
	res, err := cellnpdp.Solve(faulted, cellnpdp.Options{
		Engine: cellnpdp.Parallel, Workers: 4,
		FaultRate: 0.05, FaultSeed: 7, MaxRetries: 3,
		NoFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("retry path degraded instead of recovering in place")
	}
	assertTablesIdentical(t, ref, faulted, "retried vs serial")
}

// TestSolveHealRecoversSilentCorruption is the public-API acceptance
// property for the sealing layer: silent bit flips at a 5% task rate
// with Heal on converge to the serial answer bit for bit, with the heal
// events reported in the Result.
func TestSolveHealRecoversSilentCorruption(t *testing.T) {
	ref := chainTable(t, 300)
	if _, err := cellnpdp.Solve(ref, cellnpdp.Options{Engine: cellnpdp.Serial}); err != nil {
		t.Fatal(err)
	}
	healed := chainTable(t, 300)
	res, err := cellnpdp.Solve(healed, cellnpdp.Options{
		Engine: cellnpdp.Parallel, Workers: 4,
		FaultRate: 0.05, FaultSeed: 7, FaultKinds: "corrupt",
		Heal: true, NoFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptBlocks == 0 || res.HealRounds == 0 || res.RecomputedTasks == 0 {
		t.Fatalf("heal events not reported: %+v", res)
	}
	assertTablesIdentical(t, ref, healed, "healed vs serial")

	// The cell engine heals through the same options.
	cellHealed := chainTable(t, 300)
	res, err = cellnpdp.Solve(cellHealed, cellnpdp.Options{
		Engine: cellnpdp.Cell, Workers: 4,
		FaultRate: 0.2, FaultSeed: 7, FaultKinds: "corrupt",
		Heal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptBlocks == 0 {
		t.Fatalf("cell heal events not reported: %+v", res)
	}
	assertTablesIdentical(t, ref, cellHealed, "cell healed vs serial")
}

// TestSolveCorruptionDetectedWithoutHeal asserts the detect-only
// contract through the public API: sealing is implied by a corrupt fault
// kind, so without Heal (and without fallback) the solve fails with the
// seal-audit error — never a silently wrong table.
func TestSolveCorruptionDetectedWithoutHeal(t *testing.T) {
	tbl := chainTable(t, 300)
	_, err := cellnpdp.Solve(tbl, cellnpdp.Options{
		Engine: cellnpdp.Parallel, Workers: 4,
		FaultRate: 0.1, FaultSeed: 7, FaultKinds: "corrupt",
		NoFallback: true,
	})
	var ce *resilience.CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("want *resilience.CorruptionError, got %v", err)
	}
	// With fallback allowed, the corruption degrades to a clean tiled
	// solve instead — detected, then recovered from pristine input.
	ref := chainTable(t, 300)
	if _, err := cellnpdp.Solve(ref, cellnpdp.Options{Engine: cellnpdp.Serial}); err != nil {
		t.Fatal(err)
	}
	degraded := chainTable(t, 300)
	res, err := cellnpdp.Solve(degraded, cellnpdp.Options{
		Engine: cellnpdp.Parallel, Workers: 4,
		FaultRate: 0.1, FaultSeed: 7, FaultKinds: "corrupt",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.CorruptBlocks == 0 {
		t.Fatalf("corrupted solve neither healed nor degraded: %+v", res)
	}
	assertTablesIdentical(t, ref, degraded, "degraded-after-corruption vs serial")
}

// TestSolveHealOptionValidation pins the new knobs' range checks.
func TestSolveHealOptionValidation(t *testing.T) {
	cases := []cellnpdp.Options{
		{Engine: cellnpdp.Parallel, HealAttempts: -1},
		{Engine: cellnpdp.Parallel, AuditEvery: -1},
		{Engine: cellnpdp.Parallel, FaultKinds: "corupt"},
		{Engine: cellnpdp.Parallel, FaultRate: -0.5},
		{Engine: cellnpdp.Parallel, FaultRate: 1.5},
	}
	for _, opts := range cases {
		tbl := chainTable(t, 64)
		if _, err := cellnpdp.Solve(tbl, opts); err == nil {
			t.Fatalf("options %+v accepted", opts)
		}
	}
}

// TestSolveDegradesToTiled asserts graceful degradation: unretried
// faults fail the parallel engine, the tiled engine recovers from clean
// input, and the reason is recorded.
func TestSolveDegradesToTiled(t *testing.T) {
	ref := chainTable(t, 300)
	if _, err := cellnpdp.Solve(ref, cellnpdp.Options{Engine: cellnpdp.Serial}); err != nil {
		t.Fatal(err)
	}
	var logged bool
	degraded := chainTable(t, 300)
	res, err := cellnpdp.Solve(degraded, cellnpdp.Options{
		Engine: cellnpdp.Parallel, Workers: 4,
		FaultRate: 0.6, FaultSeed: 3,
		Logf: func(string, ...any) { logged = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.DegradedReason == "" || !logged {
		t.Fatalf("degradation not reported: %+v logged=%v", res, logged)
	}
	assertTablesIdentical(t, ref, degraded, "degraded vs serial")
}

// TestSolveResumeRejectsGeometryMismatch asserts a checkpoint from a
// different problem cannot silently poison a solve.
func TestSolveResumeRejectsGeometryMismatch(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "solve.npck")
	killed := chainTable(t, 400)
	_, err := cellnpdp.Solve(killed, cellnpdp.Options{
		Engine: cellnpdp.Parallel, Workers: 2,
		FaultRate: 0.4, FaultSeed: 5,
		CheckpointPath: ck, CheckpointEvery: 1,
		NoFallback: true,
	})
	if err == nil {
		t.Fatal("faulted run unexpectedly succeeded")
	}
	other := chainTable(t, 500)
	if _, err := cellnpdp.Solve(other, cellnpdp.Options{
		Engine: cellnpdp.Parallel, ResumePath: ck,
	}); err == nil {
		t.Fatal("resume accepted a checkpoint from a different problem size")
	}
}

// TestSolveDegradationCancelledMidFallback cancels the context at the
// exact moment degradation begins (Options.Logf fires precisely then),
// so the Tiled fallback starts under a dead context. The solve must
// surface context.Canceled — not a TaskError, and never a silent
// partial success.
func TestSolveDegradationCancelledMidFallback(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tbl := chainTable(t, 300)
	res, err := cellnpdp.SolveCtx(ctx, tbl, cellnpdp.Options{
		Engine: cellnpdp.Parallel, Workers: 4,
		FaultRate: 0.6, FaultSeed: 3,
		Logf: func(string, ...any) { cancel() },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("(%+v, %v), want context.Canceled from the cancelled fallback", res, err)
	}
	var te *resilience.TaskError
	if errors.As(err, &te) {
		t.Fatalf("cancellation surfaced as a task failure: %v", err)
	}
}

// TestSolveDegradationRacingCancel races an external cancel against the
// Parallel→Tiled degradation at varied delays (run under -race in CI).
// Whatever the interleaving, the only legal outcomes are a clean
// degraded solve or context.Canceled, and no goroutines may leak.
func TestSolveDegradationRacingCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			time.Sleep(time.Duration(i) * 500 * time.Microsecond)
			cancel()
		}()
		tbl := chainTable(t, 300)
		res, err := cellnpdp.SolveCtx(ctx, tbl, cellnpdp.Options{
			Engine: cellnpdp.Parallel, Workers: 4,
			FaultRate: 0.6, FaultSeed: 3,
		})
		switch {
		case err == nil:
			if !res.Degraded {
				t.Fatalf("iteration %d: fault-injected solve finished undegraded", i)
			}
		case errors.Is(err, context.Canceled):
		default:
			t.Fatalf("iteration %d: err = %v, want nil (degraded) or context.Canceled", i, err)
		}
		<-done
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak across racing cancels: %d before, %d after", before, after)
	}
}
