package cellnpdp

import (
	"fmt"
	"runtime"

	"cellnpdp/internal/apps"
	"cellnpdp/internal/kernel"
	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/zuker"
)

// FoldOptions configures FoldRNA.
type FoldOptions struct {
	// Engine selects the NPDP backend for the O(n³) bifurcation layer.
	Engine Engine
	// Workers for the Parallel and Cell engines.
	Workers int
	// Constraints is an optional per-base constraint line aligned with
	// the sequence: '.' leaves a base free, 'x' forces it unpaired.
	Constraints string
}

// FoldResult is a predicted RNA secondary structure.
type FoldResult struct {
	// Sequence is the normalized input (upper-case, T→U).
	Sequence string
	// MFE is the minimum free energy in kcal/mol (≤ 0; 0 = unfolded).
	MFE float32
	// DotBracket is the structure in dot-bracket notation.
	DotBracket string
	// Pairs lists the base pairs (i, j), 0-based, i < j.
	Pairs [][2]int
	// ModeledCellSeconds is the simulated QS20 time of the bifurcation
	// layer (Cell engine only).
	ModeledCellSeconds float64
}

// FoldRNA predicts the minimum-free-energy secondary structure of an RNA
// sequence under the library's simplified hairpin+stacking energy model,
// running the Zuker bifurcation layer on the selected NPDP engine.
func FoldRNA(sequence string, opts FoldOptions) (*FoldResult, error) {
	seq, err := zuker.ParseSeq(sequence)
	if err != nil {
		return nil, err
	}
	var eng zuker.Engine
	switch opts.Engine {
	case Serial:
		eng = zuker.EngineSerial
	case Tiled:
		eng = zuker.EngineTiled
	case Parallel:
		eng = zuker.EngineParallel
	case Cell:
		eng = zuker.EngineCell
	default:
		return nil, fmt.Errorf("cellnpdp: unknown engine %v", opts.Engine)
	}
	zopts := zuker.Options{Engine: eng, Workers: opts.Workers}
	if opts.Constraints != "" {
		cons, err := zuker.ParseConstraints(opts.Constraints)
		if err != nil {
			return nil, err
		}
		zopts.Constraints = cons
	}
	res, err := zuker.Fold(seq, zopts)
	if err != nil {
		return nil, err
	}
	st, err := res.Traceback()
	if err != nil {
		return nil, err
	}
	return &FoldResult{
		Sequence:           seq.String(),
		MFE:                res.MFE,
		DotBracket:         st.DotBracket(),
		Pairs:              st.Pairs,
		ModeledCellSeconds: res.CellTime,
	}, nil
}

// MatrixChain returns the minimal scalar-multiplication count and an
// optimal parenthesization for a chain of len(dims)-1 matrices, where
// matrix t has shape dims[t] × dims[t+1]. The weighted NPDP recurrence
// runs on the block-wavefront parallel engine with `workers` goroutines
// (0 = GOMAXPROCS).
func MatrixChain(dims []int, workers int) (cost int64, parenthesization string, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r, err := apps.MatrixChain(dims, workers, 0)
	if err != nil {
		return 0, "", err
	}
	return r.Cost, r.Paren(), nil
}

// OptimalBST builds the optimal binary search tree over keys with the
// given access weights and returns the expected comparison cost and each
// key's depth (root = 1).
func OptimalBST(weights []float64, workers int) (cost float64, depths []int, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r, err := apps.OptimalBST(weights, workers, 0)
	if err != nil {
		return 0, nil, err
	}
	return r.Cost, r.Depths(), nil
}

// MaxBasePairsResult is a completed MaxBasePairs run.
type MaxBasePairsResult struct {
	// Sequence is the normalized input (upper-case, T→U).
	Sequence string
	// Pairs is the maximum number of nested canonical base pairs.
	Pairs int
	// FourRussians reports whether the O(n³/log n) two-vector kernel was
	// selected over the serial O(n³) reference.
	FourRussians bool
}

// MaxBasePairs computes the Nussinov maximum-base-pairs count of an RNA
// sequence — the lattice-valued counterpart of FoldRNA's energy
// minimization. minSpan is the hairpin constraint: base i may pair with
// base j only when j−i > minSpan.
//
// Because the DP values move by 0/1 along rows and columns, this is the
// one workload where the Four-Russians stage-1 kernel is sound; the
// Section V performance model (perfmodel.PickKernel on a Lattice shape)
// decides whether it beats the serial reference at this problem size.
// Both paths produce identical answers, so selection is purely a
// performance decision.
func MaxBasePairs(sequence string, minSpan int) (*MaxBasePairsResult, error) {
	seq, err := zuker.ParseSeq(sequence)
	if err != nil {
		return nil, err
	}
	sel := perfmodel.PickKernel(perfmodel.Shape{N: len(seq), Lattice: true},
		runtime.GOARCH, kernel.VectorISA())
	res, err := zuker.MaxPairs(seq, minSpan, sel == perfmodel.KernelFourRussians)
	if err != nil {
		return nil, err
	}
	return &MaxBasePairsResult{
		Sequence:     seq.String(),
		Pairs:        res.Pairs,
		FourRussians: res.FourRussians,
	}, nil
}

// FoldRNAFull predicts RNA secondary structure with the complete Zuker
// recurrence set — hairpins, bulge/internal loops AND multibranch loops —
// using the serial reference implementation. The engine-accelerated
// FoldRNA covers the paper's bifurcation-layer simplification; FoldRNAFull
// is the ground truth it approximates (multibranch couples the pairing
// layer back into the O(n³) recurrence, which breaks the pure min-plus
// closure the Cell kernel needs).
func FoldRNAFull(sequence string) (*FoldResult, error) {
	seq, err := zuker.ParseSeq(sequence)
	if err != nil {
		return nil, err
	}
	res, err := zuker.FoldFull(seq, nil, zuker.DefaultMulti())
	if err != nil {
		return nil, err
	}
	st, err := res.Traceback()
	if err != nil {
		return nil, err
	}
	return &FoldResult{
		Sequence:   seq.String(),
		MFE:        res.MFE,
		DotBracket: st.DotBracket(),
		Pairs:      st.Pairs,
	}, nil
}

// Grammar re-exports the weighted CNF grammar type for ParseCYK.
type Grammar = apps.Grammar

// BinaryRule is a CNF rule A -> B C with a log-probability weight.
type BinaryRule = apps.BinaryRule

// LexicalRule is a CNF rule A -> terminal with a log-probability weight.
type LexicalRule = apps.LexicalRule

// ParseCYK runs the Viterbi CYK parse of a weighted CNF grammar — the
// grammar-shaped NPDP instance — on the block-wavefront parallel engine.
// It returns the max log-probability of deriving the input from symbol 0
// and whether any derivation exists.
func ParseCYK(g *Grammar, input []byte, workers int) (logProb float64, recognized bool, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r, err := apps.CYKParse(g, input, workers, 0)
	if err != nil {
		return 0, false, err
	}
	return r.LogProb, r.Recognized, nil
}

// Point is a polygon vertex for MinWeightTriangulation.
type Point = apps.Point

// MinWeightTriangulation computes the minimum-total-perimeter
// triangulation of a convex polygon — the geometric NPDP instance — and
// returns the weight and the triangle list as vertex-index triples.
func MinWeightTriangulation(vertices []Point, workers int) (weight float64, triangles [][3]int, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r, err := apps.MinWeightTriangulation(vertices, workers, 0)
	if err != nil {
		return 0, nil, err
	}
	return r.Weight, r.Triangles(), nil
}
